// Device-config loader: schema validation + DeviceConfig construction,
// plus the process-wide active-device selection (READDUO_DEVICE).
//
// Validation contract (DESIGN.md §13): a malformed device file NEVER
// half-loads. Structural errors, unknown sections/keys, unit mistakes,
// range violations, and cross-field inconsistencies all throw ConfigError
// with "<file>:<line>:" context; required keys have no silent defaults —
// a missing one is an error naming every absent key at once.
#pragma once

#include <iosfwd>
#include <string>

#include "config/device_config.h"
#include "config/parser.h"

namespace rd::config {

/// Validate `raw` against the device schema and build the DeviceConfig.
/// Throws ConfigError on any violation (see file header).
DeviceConfig device_from_raw(const RawConfig& raw);

/// Parse + validate from a stream; `source` names it in diagnostics.
DeviceConfig parse_device(std::istream& in, const std::string& source);

/// Parse + validate a device config file.
DeviceConfig load_device(const std::string& path);

/// The process-wide device every default-constructed simulation object
/// uses (chip metric configs, scheme drift models, make_scheme_env's
/// timing/energy). Resolved once: READDUO_DEVICE=<path> loads that file;
/// unset (the common case) yields builtin_device(), whose parameters are
/// the compiled-in paper constants — so existing runs are bit-identical.
/// A malformed READDUO_DEVICE file throws on first use, never half-loads.
const DeviceConfig& active_device();

/// Where the active device came from: "builtin" or the loaded file path.
const std::string& active_device_source();

/// Select the active device programmatically (the --device CLI flags).
/// Must run before the first active_device() call — the drift-model
/// singletons latch the device they were built from, so a later switch
/// would desynchronize them; attempting one throws ConfigError.
void set_active_device(DeviceConfig dev, const std::string& source);

}  // namespace rd::config
