#include "config/parser.h"

#include <cctype>
#include <fstream>
#include <sstream>

namespace rd::config {

namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

[[noreturn]] void fail(const std::string& source, std::size_t line,
                       const std::string& msg) {
  std::ostringstream os;
  os << source << ":" << line << ": " << msg;
  throw ConfigError(os.str());
}

bool valid_name(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) ||
                    c == '_' || c == '-' || c == '.';
    if (!ok) return false;
  }
  return true;
}

}  // namespace

RawConfig RawConfig::parse(std::istream& in, const std::string& source) {
  RawConfig cfg;
  cfg.source_ = source;
  std::string line;
  std::string section;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t comment = line.find_first_of("#;");
    if (comment != std::string::npos) line.resize(comment);
    const std::string t = trim(line);
    if (t.empty()) continue;
    if (t.front() == '[') {
      const std::size_t close = t.find(']');
      if (close == std::string::npos) {
        fail(source, lineno, "unterminated section header (missing ']')");
      }
      if (close + 1 != t.size()) {
        fail(source, lineno,
             "unexpected text after ']' in section header: '" +
                 t.substr(close + 1) + "'");
      }
      section = trim(t.substr(1, close - 1));
      if (!valid_name(section)) {
        fail(source, lineno,
             section.empty() ? "empty section name"
                             : "invalid section name '" + section + "'");
      }
      continue;
    }
    const std::size_t eq = t.find('=');
    if (eq == std::string::npos) {
      fail(source, lineno, "expected 'key = value', got '" + t + "'");
    }
    const std::string key = trim(t.substr(0, eq));
    const std::string value = trim(t.substr(eq + 1));
    if (!valid_name(key)) {
      fail(source, lineno,
           key.empty() ? "empty key" : "invalid key name '" + key + "'");
    }
    if (value.empty()) {
      fail(source, lineno, "empty value for key '" + key + "'");
    }
    if (section.empty()) {
      fail(source, lineno,
           "key '" + key + "' appears before any [section] header");
    }
    const std::string full = section + "." + key;
    const auto [it, inserted] = cfg.entries_.insert({full, {value, lineno}});
    if (!inserted) {
      fail(source, lineno,
           "duplicate key '" + full + "' (first set on line " +
               std::to_string(it->second.line) + ")");
    }
  }
  return cfg;
}

RawConfig RawConfig::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw ConfigError(path + ": cannot open device config file");
  }
  return parse(in, path);
}

const RawEntry& RawConfig::at(const std::string& key) const {
  const auto it = entries_.find(key);
  RD_CHECK_MSG(it != entries_.end(),
               "internal: config key '" << key << "' queried but absent");
  return it->second;
}

}  // namespace rd::config
