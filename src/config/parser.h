// Strict section/key/value parser for device config files.
//
// Grammar (DESIGN.md §13):
//   file     := line*
//   line     := blank | comment | section | pair
//   comment  := ('#' | ';') .*            (also allowed after a pair)
//   section  := '[' name ']'
//   pair     := key '=' value
//
// Unlike the permissive rd::Config INI loader (common/config.h, kept for
// ad-hoc system overrides), this parser is built for validated device
// schemas: every entry retains its source line so the schema layer can
// report unknown keys, unit mistakes, and range violations as
// "<file>:<line>: ..." diagnostics, and structural mistakes (duplicate
// keys, junk after a section header, pairs before any section) are hard
// errors instead of silent acceptance.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <map>
#include <string>

#include "common/check.h"

namespace rd::config {

/// Thrown for every malformed config condition, parse-time or
/// validation-time. The message always leads with "<source>:<line>:"
/// (or "<source>:" for whole-file conditions such as missing keys).
class ConfigError : public CheckFailure {
 public:
  explicit ConfigError(const std::string& what) : CheckFailure(what) {}
};

/// One raw "key = value" occurrence.
struct RawEntry {
  std::string value;     ///< verbatim value text (trimmed, comment stripped)
  std::size_t line = 0;  ///< 1-based source line of the pair
};

/// A parsed (but not yet schema-validated) config file: an ordered map of
/// "section.key" -> RawEntry plus the source name for diagnostics.
class RawConfig {
 public:
  /// Parse from a stream; `source` names it in diagnostics. Throws
  /// ConfigError on any structural violation: a pair outside a section,
  /// an unterminated or empty section header, text after ']', a missing
  /// '=', an empty key or value, or a duplicate key.
  static RawConfig parse(std::istream& in, const std::string& source);
  /// Parse a file. Throws ConfigError when unreadable.
  static RawConfig load(const std::string& path);

  const std::string& source() const { return source_; }
  const std::map<std::string, RawEntry>& entries() const { return entries_; }

  bool has(const std::string& key) const { return entries_.count(key) != 0; }
  /// The entry for `key`; RD_CHECK-fails when absent (callers gate on
  /// has() or the schema's required-key pass).
  const RawEntry& at(const std::string& key) const;

 private:
  std::string source_;
  std::map<std::string, RawEntry> entries_;
};

}  // namespace rd::config
