#include "config/device_config.h"

namespace rd::config {

const DeviceConfig& builtin_device() {
  // Built from exactly the compiled-in constants the stack used before
  // the config subsystem existed: drift::r_metric()/m_metric() (Tables
  // I/II) and the default-constructed params.h / geometry structs (Table
  // VIII, the Table IX substitutes, BCH-8 + ECP-6, the 640 s / W=1
  // scrub). configs/pcm_readduo_t1.cfg is golden-test-enforced to load
  // bit-for-bit equal to this value (tests/test_config.cpp).
  static const DeviceConfig kBuiltin = [] {
    DeviceConfig d;
    d.name = "pcm-readduo-t1";
    d.kind = "pcm";
    d.description =
        "ReadDuo (DSN 2016) MLC PCM: Tables I/II drift metrics, Table "
        "VIII system, Table IX energy substitutes";
    d.r_metric = drift::r_metric();
    d.m_metric = drift::m_metric();
    d.geometry = drift::LineGeometry{};
    d.org = pcm::MemoryOrg{};
    d.timing = pcm::TimingParams{};
    d.energy = pcm::EnergyParams{};
    d.ecc = EccParams{};
    d.scrub = ScrubParams{};
    return d;
  }();
  return kBuiltin;
}

}  // namespace rd::config
