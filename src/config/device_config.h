// The device zoo: every physical parameter the simulator stack consumes,
// gathered into one value type that external .cfg files can populate.
//
// Historically the ReadDuo Tables I/II drift parameters, the Table VIII
// timing/energy sets, and the BCH/scrub geometry were compile-time
// constants scattered across drift/metric.cpp, pcm/params.h, and
// pcm/chip.h. A DeviceConfig carries all of them, so a PCM variant, an
// RRAM parameter set, or a TLC-NAND retention model is data (a file under
// configs/), not code — the role NVMain's Config/*.config files play.
//
// The built-in device (builtin_device()) is constructed from exactly the
// same compiled-in constants as before, and configs/pcm_readduo_t1.cfg is
// test-enforced to reproduce it bit-for-bit (the default-equivalence
// guarantee, DESIGN.md §13): running with no device selected and running
// under READDUO_DEVICE=configs/pcm_readduo_t1.cfg are indistinguishable,
// down to golden metrics and bench-cache keys.
#pragma once

#include <string>

#include "drift/error_model.h"
#include "drift/metric.h"
#include "pcm/params.h"

namespace rd::config {

/// BCH / ECP geometry of a line (ChipConfig's code parameters).
struct EccParams {
  unsigned bch_t = 8;        ///< BCH correction strength (errors per line)
  unsigned ecp_pointers = 6;  ///< error-correcting-pointer entries per line
};

/// Scrub-engine policy defaults (the paper's (E, S, W) operating point).
struct ScrubParams {
  double interval_s = 640.0;  ///< scrub period S in seconds; 0 disables
  unsigned w = 1;             ///< rewrite threshold W (0 = always rewrite)
  bool use_m_sense = true;    ///< scrub senses with the M-metric (ReadDuo)
};

/// One complete device description: everything the chip model, the drift
/// analysis, the scheme layer, and the timing simulator need to know
/// about the underlying memory technology.
struct DeviceConfig {
  /// Stable identifier ("pcm-readduo-t1"). Carried into the metrics JSON
  /// `device` field, the bench-cache key, and the wire hello, so results
  /// are always attributable to the device that produced them.
  std::string name;
  /// Technology family: "pcm", "rram", or "nand".
  std::string kind;
  /// Free-form provenance note (which paper/table the numbers came from).
  std::string description;

  /// Fast (current-sensing) readout metric — Table I for the paper PCM.
  drift::MetricConfig r_metric;
  /// Robust (voltage-sensing) readout metric — Table II.
  drift::MetricConfig m_metric;

  /// Data/parity cell split of a line.
  drift::LineGeometry geometry;
  /// Rank/bank/line organization (Table VIII).
  pcm::MemoryOrg org;
  /// Per-operation latencies (Table VIII / Section IV).
  pcm::TimingParams timing;
  /// Per-operation dynamic energies (Table IX substitute).
  pcm::EnergyParams energy;
  /// Line code geometry.
  EccParams ecc;
  /// Scrub policy defaults.
  ScrubParams scrub;
};

/// The compiled-in ReadDuo MLC PCM device: Tables I/II drift metrics
/// (drift::r_metric()/m_metric()), Table VIII timing/organization, the
/// Table IX energy substitutes, BCH-8 + 6-pointer ECP lines, and the
/// (E=17, S=640 s, W=1) scrub point. configs/pcm_readduo_t1.cfg is the
/// externalized twin, golden-test-enforced bit-for-bit equal.
const DeviceConfig& builtin_device();

}  // namespace rd::config
