// bench_compare: regression gate over two BENCH_*.json summaries.
//
// Usage: bench_compare <baseline.json> <candidate.json> [max_regress_pct]
//
// Reads the "kernels_ns" section that run_all_benches.sh emits under
// READDUO_BENCH_JSON (one object per rewritten kernel, with nanosecond
// entries like "ref"/"opt"/"vec" plus derived "speedup*" ratios) and
// compares every nanosecond entry present in both files. A metric that
// got slower by more than max_regress_pct percent (default 10) is a
// regression; any regression — or a kernel metric that disappeared from
// the candidate — makes the tool exit nonzero, so run_all_benches.sh can
// use it as an opt-in perf gate (READDUO_BENCH_COMPARE=<baseline.json>).
//
// Dependency-free on purpose: the JSON it reads is the repo's own
// machine-written summary, so a small purpose-built scanner is enough and
// the tool stays buildable anywhere the rest of the repo builds. Derived
// "speedup*" entries are ratios, not times, and are skipped.
//
// Exit codes: 0 = within budget, 1 = regression (or missing metric),
// 2 = usage / file / parse error.

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

// Kernel name -> metric name -> nanoseconds. std::map keeps the report
// ordering deterministic across runs and platforms.
using KernelTable = std::map<std::string, std::map<std::string, double>>;

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

void skip_ws(const std::string& text, std::size_t& pos) {
  while (pos < text.size() &&
         std::isspace(static_cast<unsigned char>(text[pos])) != 0) {
    ++pos;
  }
}

// Parse a double-quoted string at `pos` (which must point at the opening
// quote). The summary writer never emits escapes inside names, so a plain
// scan to the closing quote is faithful.
bool parse_string(const std::string& text, std::size_t& pos,
                  std::string* out) {
  if (pos >= text.size() || text[pos] != '"') return false;
  const std::size_t end = text.find('"', pos + 1);
  if (end == std::string::npos) return false;
  *out = text.substr(pos + 1, end - pos - 1);
  pos = end + 1;
  return true;
}

bool parse_number(const std::string& text, std::size_t& pos, double* out) {
  const char* start = text.c_str() + pos;
  char* end = nullptr;
  const double v = std::strtod(start, &end);
  if (end == start) return false;
  pos += static_cast<std::size_t>(end - start);
  *out = v;
  return true;
}

// Extract the "kernels_ns" object: { "name": { "metric": number, ... }, ... }
bool parse_kernels_ns(const std::string& text, KernelTable* table,
                      std::string* err) {
  const std::size_t anchor = text.find("\"kernels_ns\"");
  if (anchor == std::string::npos) {
    *err = "no \"kernels_ns\" section";
    return false;
  }
  std::size_t pos = text.find('{', anchor);
  if (pos == std::string::npos) {
    *err = "\"kernels_ns\" has no object";
    return false;
  }
  ++pos;  // past the outer '{'
  for (;;) {
    skip_ws(text, pos);
    if (pos < text.size() && text[pos] == ',') {
      ++pos;
      skip_ws(text, pos);
    }
    if (pos >= text.size()) {
      *err = "unterminated kernels_ns object";
      return false;
    }
    if (text[pos] == '}') return true;  // end of kernels_ns
    std::string kernel;
    if (!parse_string(text, pos, &kernel)) {
      *err = "expected a kernel name string";
      return false;
    }
    skip_ws(text, pos);
    if (pos >= text.size() || text[pos] != ':') {
      *err = "expected ':' after kernel name '" + kernel + "'";
      return false;
    }
    ++pos;
    skip_ws(text, pos);
    if (pos >= text.size() || text[pos] != '{') {
      *err = "expected '{' for kernel '" + kernel + "'";
      return false;
    }
    ++pos;
    for (;;) {
      skip_ws(text, pos);
      if (pos < text.size() && text[pos] == ',') {
        ++pos;
        skip_ws(text, pos);
      }
      if (pos >= text.size()) {
        *err = "unterminated entry for kernel '" + kernel + "'";
        return false;
      }
      if (text[pos] == '}') {
        ++pos;
        break;
      }
      std::string metric;
      double value = 0.0;
      if (!parse_string(text, pos, &metric)) {
        *err = "expected a metric name in kernel '" + kernel + "'";
        return false;
      }
      skip_ws(text, pos);
      if (pos >= text.size() || text[pos] != ':') {
        *err = "expected ':' after metric '" + metric + "'";
        return false;
      }
      ++pos;
      skip_ws(text, pos);
      if (!parse_number(text, pos, &value)) {
        *err = "expected a number for metric '" + metric + "'";
        return false;
      }
      (*table)[kernel][metric] = value;
    }
  }
}

bool load(const std::string& path, KernelTable* table) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "bench_compare: cannot open " << path << "\n";
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string err;
  if (!parse_kernels_ns(buf.str(), table, &err)) {
    std::cerr << "bench_compare: " << path << ": " << err << "\n";
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3 || argc > 4) {
    std::cerr << "usage: bench_compare <baseline.json> <candidate.json>"
                 " [max_regress_pct]\n";
    return 2;
  }
  double max_pct = 10.0;
  if (argc == 4) {
    char* end = nullptr;
    max_pct = std::strtod(argv[3], &end);
    if (end == argv[3] || *end != '\0' || !(max_pct >= 0.0)) {
      std::cerr << "bench_compare: max_regress_pct must be a nonnegative"
                   " number, got '"
                << argv[3] << "'\n";
      return 2;
    }
  }

  KernelTable base, cand;
  if (!load(argv[1], &base) || !load(argv[2], &cand)) return 2;

  int regressions = 0;
  int compared = 0;
  for (const auto& [kernel, metrics] : base) {
    for (const auto& [metric, old_ns] : metrics) {
      if (starts_with(metric, "speedup")) continue;  // derived ratio
      const auto kit = cand.find(kernel);
      if (kit == cand.end() || kit->second.count(metric) == 0) {
        std::cout << "MISSING  " << kernel << "." << metric
                  << " (in baseline, absent from candidate)\n";
        ++regressions;
        continue;
      }
      const double new_ns = kit->second.at(metric);
      ++compared;
      const double delta_pct =
          old_ns > 0.0 ? (new_ns - old_ns) / old_ns * 100.0 : 0.0;
      const bool regressed = delta_pct > max_pct;
      std::cout << (regressed ? "REGRESS  " : "ok       ") << kernel << "."
                << metric << "  " << old_ns << " -> " << new_ns << " ns  ("
                << (delta_pct >= 0.0 ? "+" : "") << delta_pct << "%)\n";
      if (regressed) ++regressions;
    }
  }
  // New kernels/metrics in the candidate are fine (a new tier landing is
  // the expected way this file grows) — list them for the record.
  for (const auto& [kernel, metrics] : cand) {
    for (const auto& [metric, ns] : metrics) {
      if (starts_with(metric, "speedup")) continue;
      const auto kit = base.find(kernel);
      if (kit == base.end() || kit->second.count(metric) == 0) {
        std::cout << "new      " << kernel << "." << metric << "  " << ns
                  << " ns (no baseline)\n";
      }
    }
  }
  if (compared == 0 && regressions == 0) {
    std::cerr << "bench_compare: nothing to compare (empty kernels_ns?)\n";
    return 2;
  }
  std::cout << "bench_compare: " << compared << " metric(s) compared, "
            << regressions << " regression(s), budget " << max_pct << "%\n";
  return regressions > 0 ? 1 : 0;
}
