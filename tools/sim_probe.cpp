// Scratch probe: run a few workloads under all schemes, print normalized
// execution time / dynamic energy / lifetime to calibrate against the
// paper's Figures 9, 10 and 15.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "memsim/env.h"
#include "memsim/simulator.h"
#include "readduo/schemes.h"
#include "trace/workload.h"

using namespace rd;

int main(int argc, char** argv) {
  const std::uint64_t budget =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2'000'000;

  const std::vector<readduo::SchemeKind> kinds = {
      readduo::SchemeKind::kIdeal,     readduo::SchemeKind::kScrubbing,
      readduo::SchemeKind::kMMetric,   readduo::SchemeKind::kHybrid,
      readduo::SchemeKind::kLwt,       readduo::SchemeKind::kSelect,
  };

  for (const char* wname : {"bzip2", "mcf", "sphinx3", "lbm"}) {
    const trace::Workload& w = trace::workload_by_name(wname);
    std::printf("== %s (rpki=%.1f wpki=%.1f arch=%.2f)\n", wname, w.rpki,
                w.wpki, w.archive_read_fraction);
    double ideal_time = 0.0, ideal_energy = 0.0, ideal_cells = 0.0;
    for (auto kind : kinds) {
      memsim::SimConfig pre;  // for cpu params
      readduo::SchemeEnv env = memsim::make_scheme_env(w, pre.cpu, 7);
      readduo::ReadDuoOptions opts;
      auto scheme = readduo::make_scheme(kind, env, opts);
      memsim::SimConfig cfg = pre;
      cfg.instructions_per_core = budget;
      cfg.seed = 13;
      memsim::Simulator sim(cfg, *scheme, w);
      const memsim::SimResult r = sim.run();
      const auto& c = scheme->counters();
      const double energy = c.dynamic_energy_pj();
      const double cells = static_cast<double>(c.cell_writes);
      if (kind == readduo::SchemeKind::kIdeal) {
        ideal_time = static_cast<double>(r.exec_time.v);
        ideal_energy = energy;
        ideal_cells = cells;
      }
      std::printf(
          "%-10s T=%6.3f E=%6.3f W=%6.3f | lat=%6.0fns R/M/RM=%lu/%lu/%lu "
          "untrk=%lu conv=%lu scrubs=%lu rw=%lu cancel=%lu backlog=%lu "
          "util=%.2f sil=%lu\n",
          scheme->name().c_str(),
          static_cast<double>(r.exec_time.v) / ideal_time,
          energy / ideal_energy, cells / ideal_cells,
          r.avg_read_latency_ns(), c.r_reads, c.m_reads, c.rm_reads,
          c.untracked_reads, c.converted_reads, c.scrub_senses,
          c.scrub_rewrites, r.write_cancellations, r.scrub_backlog_end,
          static_cast<double>(r.bank_busy_ns) /
              (static_cast<double>(r.exec_time.v) * 8.0),
          c.silent_corruptions);
    }
  }
  return 0;
}
