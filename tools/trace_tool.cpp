// trace_tool — record and characterize memory traces.
//
//   trace_tool record <workload> <n_ops> <out.trace> [core] [seed]
//   trace_tool stats <in.trace>
//
// `record` captures a synthetic workload stream to a portable text trace;
// `stats` prints the Table X-style characterization of any trace file
// (including externally produced ones in the same format).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "common/check.h"
#include "trace/trace_io.h"
#include "trace/workload.h"

using namespace rd;

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s record <workload> <n_ops> <out.trace> [core] "
                 "[seed]\n"
                 "       %s stats <in.trace>\n",
                 argv[0], argv[0]);
    return 2;
  }
  try {
    if (std::strcmp(argv[1], "record") == 0) {
      RD_CHECK_MSG(argc >= 5, "record needs <workload> <n_ops> <out>");
      const trace::Workload& w = trace::workload_by_name(argv[2]);
      const std::size_t n = std::strtoull(argv[3], nullptr, 10);
      const unsigned core =
          argc > 5 ? static_cast<unsigned>(std::atoi(argv[5])) : 0;
      const std::uint64_t seed =
          argc > 6 ? std::strtoull(argv[6], nullptr, 10) : 42;
      std::ofstream out(argv[4]);
      RD_CHECK_MSG(static_cast<bool>(out), "cannot open " << argv[4]);
      trace::TraceGen gen(w, core, seed);
      trace::record_trace(gen, n, out);
      std::printf("recorded %zu ops of %s (core %u, seed %llu) to %s\n", n,
                  w.name.c_str(), core,
                  static_cast<unsigned long long>(seed), argv[4]);
      return 0;
    }
    if (std::strcmp(argv[1], "stats") == 0) {
      std::ifstream in(argv[2]);
      RD_CHECK_MSG(static_cast<bool>(in), "cannot open " << argv[2]);
      const auto ops = trace::load_trace(in);
      const trace::TraceStats st = trace::characterize(ops);
      std::printf("ops            : %zu (%zu reads / %zu writes)\n", st.ops,
                  st.reads, st.writes);
      std::printf("instructions   : %llu\n",
                  static_cast<unsigned long long>(st.instructions));
      std::printf("RPKI / WPKI    : %.3f / %.3f\n", st.rpki(), st.wpki());
      std::printf("archive reads  : %zu (%.1f%% of reads)\n",
                  st.archive_reads,
                  st.reads ? 100.0 * static_cast<double>(st.archive_reads) /
                                 static_cast<double>(st.reads)
                           : 0.0);
      std::printf("footprint      : %llu lines (%.1f MB)\n",
                  static_cast<unsigned long long>(st.distinct_lines),
                  st.footprint_mb());
      return 0;
    }
    std::fprintf(stderr, "unknown subcommand: %s\n", argv[1]);
    return 2;
  } catch (const CheckFailure& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
