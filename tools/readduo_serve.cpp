// readduo_serve — the memory service behind a socket (DESIGN.md §12).
//
//   readduo_serve --listen=unix:/tmp/rd.sock --seed=7
//   READDUO_THREADS=4 readduo_serve --listen=tcp:127.0.0.1:0 --oneshot
//
// Binds the framed wire protocol (src/net/) in front of one
// service::MemoryService and runs the poll loop until SIGINT/SIGTERM —
// or, with --oneshot, until at least one client has connected and all
// connections are gone (the harness mode: run_test_sweep.sh lane 8
// starts a server, points readduo_load --connect at it, and the server
// exits by itself when the load generator hangs up).
//
// The first stdout line is `READDUO_SERVE listening <addr>` with the
// resolved address (tcp port 0 is filled in), so scripts can wait for
// readiness and discover the port. Virtual-time results served over the
// wire are bit-identical to an in-process readduo_load run of the same
// (seed, scheme, workload, shards) — the sequence-merge rule in
// MemoryService makes socket arrival interleaving irrelevant.
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>

#include "common/check.h"
#include "config/loader.h"
#include "net/server.h"
#include "trace/workload.h"

using namespace rd;

namespace {

net::Server* g_server = nullptr;

void handle_signal(int) {
  if (g_server != nullptr) g_server->stop();  // async-signal-safe
}

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "\n"
      "options:\n"
      "  --listen=<addr>   unix:<path> or tcp:<host>:<port> (port 0 =\n"
      "                    kernel-assigned; default unix:/tmp/rd.sock)\n"
      "  --scheme=<name>   Ideal | Scrubbing | M-metric | Hybrid |\n"
      "                    LWT | Select (default Hybrid)\n"
      "  --workload=<name> locality/write-mix template (default mcf)\n"
      "  --device=<file>   device config (overrides READDUO_DEVICE; a\n"
      "                    client hello naming another device is refused)\n"
      "  --seed=<n>        RNG seed (default 42)\n"
      "  --shards=<n>      chips (default 4)\n"
      "  --queue=<n>       per-client admission bound\n"
      "  --batch=<n>       admission batch size\n"
      "  --oneshot         exit when the last client disconnects\n"
      "\n"
      "environment:\n"
      "  READDUO_THREADS          service worker threads\n"
      "  READDUO_SERVICE_SHARDS   default for --shards\n"
      "  READDUO_SERVICE_QUEUE    default for --queue\n"
      "  READDUO_SERVICE_BATCH    default for --batch\n"
      "  READDUO_SERVE_MAX_FRAME  largest accepted frame payload, bytes\n"
      "  READDUO_SERVE_WBUF       per-connection write-buffer bound\n"
      "  READDUO_SERVE_CONNS     accepted-connection cap\n",
      argv0);
}

bool parse_flag(const char* arg, const char* name, std::string& out) {
  const std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) == 0 && arg[n] == '=') {
    out = arg + n + 1;
    return true;
  }
  return false;
}

readduo::SchemeKind scheme_by_name(const std::string& s) {
  if (s == "Ideal") return readduo::SchemeKind::kIdeal;
  if (s == "TLC") return readduo::SchemeKind::kTlc;
  if (s == "Scrubbing") return readduo::SchemeKind::kScrubbing;
  if (s == "M-metric") return readduo::SchemeKind::kMMetric;
  if (s == "Hybrid") return readduo::SchemeKind::kHybrid;
  if (s == "LWT") return readduo::SchemeKind::kLwt;
  if (s == "Select") return readduo::SchemeKind::kSelect;
  RD_CHECK_MSG(false, "unknown scheme: " + s);
  return readduo::SchemeKind::kHybrid;
}

}  // namespace

int main(int argc, char** argv) {
  std::string listen = "unix:/tmp/rd.sock";
  std::string scheme = "Hybrid";
  std::string workload = "mcf";
  std::uint64_t seed = 42;
  std::string shards_flag, queue_flag, batch_flag, device_path;
  bool oneshot = false;

  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (parse_flag(argv[i], "--listen", v)) {
      listen = v;
    } else if (parse_flag(argv[i], "--device", v)) {
      device_path = v;
    } else if (parse_flag(argv[i], "--scheme", v)) {
      scheme = v;
    } else if (parse_flag(argv[i], "--workload", v)) {
      workload = v;
    } else if (parse_flag(argv[i], "--seed", v)) {
      seed = std::stoull(v);
    } else if (parse_flag(argv[i], "--shards", v)) {
      shards_flag = v;
    } else if (parse_flag(argv[i], "--queue", v)) {
      queue_flag = v;
    } else if (parse_flag(argv[i], "--batch", v)) {
      batch_flag = v;
    } else if (std::strcmp(argv[i], "--oneshot") == 0) {
      oneshot = true;
    } else {
      usage(argv[0]);
      return 2;
    }
  }

  // Pin the device before the service builds its chips; the --device
  // flag wins over the READDUO_DEVICE env knob.
  if (!device_path.empty()) {
    config::set_active_device(config::load_device(device_path),
                              device_path);
  }

  net::ServerConfig cfg;
  cfg.listen = listen;
  net::apply_server_env(cfg);
  cfg.service.sim.seed = seed;
  cfg.service.scheme = scheme_by_name(scheme);
  cfg.service.workload = trace::workload_by_name(workload);
  service::apply_service_env(cfg.service);  // env defaults, flags override
  if (!shards_flag.empty()) {
    cfg.service.num_shards = static_cast<unsigned>(std::stoul(shards_flag));
  }
  if (!queue_flag.empty()) {
    cfg.service.queue_capacity = std::stoull(queue_flag);
  }
  if (!batch_flag.empty()) cfg.service.batch_size = std::stoull(batch_flag);

  net::Server server(cfg);
  server.start();
  g_server = &server;
  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);

  // lint: allow(env-registry) readiness banner, not an environment knob
  std::printf("READDUO_SERVE listening %s\n", server.address().c_str());
  std::printf(
      "[serve] scheme=%s device=%s workload=%s shards=%u threads=%u "
      "queue=%zu batch=%zu seed=%llu%s\n",
      scheme.c_str(), config::active_device().name.c_str(),
      workload.c_str(), server.service().num_shards(),
      server.service().worker_threads(), cfg.service.queue_capacity,
      cfg.service.batch_size, static_cast<unsigned long long>(seed),
      oneshot ? " oneshot" : "");
  std::fflush(stdout);

  server.run(oneshot);
  g_server = nullptr;

  server.service().stop();
  const service::ServiceStats st = server.service().stats();
  const net::ServerCounters ct = server.counters();
  std::printf(
      "[serve] done: conns=%llu shed=%llu frames=%llu bad=%llu crc=%llu "
      "wire_faults=%llu retries=%llu | submitted=%llu completed=%llu "
      "vt=%.1fms\n",
      static_cast<unsigned long long>(ct.conns_accepted),
      static_cast<unsigned long long>(ct.conns_shed),
      static_cast<unsigned long long>(ct.frames_rx),
      static_cast<unsigned long long>(ct.frames_bad),
      static_cast<unsigned long long>(ct.crc_errors),
      static_cast<unsigned long long>(ct.wire_faults),
      static_cast<unsigned long long>(ct.retries_sent),
      static_cast<unsigned long long>(st.submitted),
      static_cast<unsigned long long>(st.completed),
      static_cast<double>(st.virtual_time.v) / 1e6);
  return 0;
}
