// readduo_lint — determinism & unit-safety checker for this repo.
//
// The reproduction's headline guarantees (bit-identical results across
// READDUO_THREADS, an integral-nanosecond clock, every knob documented)
// are invariants of the *source*, not just of the current test outputs.
// This tool enforces them by construction with a dependency-free
// tokenizing line scanner — no libclang, nothing to install:
//
//   no-rand       libc / std random sources outside common/rng.*
//   no-wallclock  wall-clock reads outside the bench harness
//   no-getenv     raw getenv outside common/env.h (the audited gateway)
//   no-unordered  unordered containers in result-producing code
//   unit-conv     raw 1e9 / 1e-9 ns<->s conversions outside units.h
//                 and the analytic drift layer
//   sig-ns        function parameters `int64_t ..ns` instead of rd::Ns
//   sig-seconds   function parameters `double ..s/..seconds` outside the
//                 seconds-domain layers (drift, pcm cell physics, schemes)
//   env-registry  READDUO_* string literals missing from the registry
//                 below or from README.md
//   lint-allow    malformed suppression (missing reason / unknown rule)
//
// Concurrency-discipline rules (PR 8; see common/thread_annotations.h and
// DESIGN.md §8 — these keep the Clang -Wthread-safety gate honest by
// construction, so locking that the analysis cannot see never ships):
//
//   no-bare-mutex raw std::mutex / lock_guard / unique_lock /
//                 condition_variable outside the annotated rd::Mutex
//                 wrapper header (invisible to the capability analysis)
//   guarded-field a `_mu`-suffixed rd::Mutex member that no
//                 RD_GUARDED_BY / RD_REQUIRES / RD_ACQUIRE annotation in
//                 the file references — a capability guarding nothing
//   atomic-order  std::atomic load/store/RMW without an explicit
//                 std::memory_order (seq-cst-by-default hides intent)
//   no-detach     std::thread::detach or a naked `new std::thread` —
//                 every thread must be joined by an owner
//
// Violations print `file:line: rule-id: message` and exit nonzero; the
// last line is always a `N violation(s)` summary. `--max-findings=N`
// truncates the per-finding output (CI log hygiene) without changing the
// summary count or the exit code.
// Suppression: a trailing comment of the form
//   lint: allow(no-rand) reproducing libc behaviour under test
// on the offending line, or on a standalone comment line directly above
// it. The rule-id must be real and the reason is required.
//
// Self-test: `readduo_lint --selftest <fixture-dir>` scans the fixtures
// (classified as if under src/) and compares the findings against
// `// expect: rule-id [rule-id...]` markers, proving each rule fires and
// suppressions are honored.
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

// ------------------------------------------------------------ registry ---
// Every READDUO_* environment knob the repo is allowed to mention. A new
// knob must be added here *and* documented in README.md before it ships.
const std::set<std::string>& env_registry() {
  static const std::set<std::string> kRegistry = {
      "READDUO_BENCH_COMPARE", "READDUO_BENCH_FAST",   "READDUO_BENCH_JSON",
      "READDUO_CACHE",         "READDUO_COVERAGE",     "READDUO_DEVICE",
      "READDUO_FAULTS",        "READDUO_INSTR",        "READDUO_KERNELS",
      "READDUO_METRICS",       "READDUO_REGEN_GOLDEN", "READDUO_SANITIZE",
      "READDUO_SERVE_CONNS",   "READDUO_SERVE_MAX_FRAME",
      "READDUO_SERVE_WBUF",    "READDUO_SERVICE_BATCH",
      "READDUO_SERVICE_QUEUE", "READDUO_SERVICE_SHARDS", "READDUO_SIMD",
      "READDUO_THREADS",       "READDUO_TRACE",        "READDUO_TSAN_SOAK",
  };
  return kRegistry;
}

const std::set<std::string>& known_rules() {
  static const std::set<std::string> kRules = {
      "no-rand",       "no-wallclock",  "no-getenv",    "no-unordered",
      "unit-conv",     "sig-ns",        "sig-seconds",  "env-registry",
      "lint-allow",    "no-bare-mutex", "guarded-field", "atomic-order",
      "no-detach",
  };
  return kRules;
}

// Per-file allowlist: these files *are* the audited implementation the
// rule funnels everything through.
bool file_allowed(const std::string& rel, const std::string& rule) {
  static const std::multimap<std::string, std::string> kAllow = {
      {"no-rand", "src/common/rng.cpp"},
      {"no-rand", "src/common/rng.h"},
      {"no-wallclock", "bench/harness.cpp"},  // harness wall-clock metrics
      // Load-gen throughput (req per wall second) is a wall-clock
      // quantity by definition; all sim latencies stay virtual.
      {"no-wallclock", "tools/readduo_load.cpp"},
      {"no-getenv", "src/common/env.h"},      // the audited gateway
      // The wrapper header *is* the audited std::mutex implementation.
      {"no-bare-mutex", "src/common/thread_annotations.h"},
  };
  auto [lo, hi] = kAllow.equal_range(rule);
  for (auto it = lo; it != hi; ++it) {
    if (rel == it->second) return true;
  }
  return false;
}

bool starts_with(const std::string& s, const std::string& p) {
  return s.rfind(p, 0) == 0;
}

// ------------------------------------------------------------- scanner ---

/// One physical line split into scan domains.
struct LinePieces {
  std::string code;                  ///< comments and literal bodies blanked
  std::string comment;               ///< concatenated comment text
  std::vector<std::string> strings;  ///< string literal bodies
};

/// Split `line` into code / comment / string-literal domains. `in_block`
/// carries /* ... */ state across lines. Escapes inside literals are
/// honored; raw strings are treated as plain strings (good enough for this
/// codebase, which has none).
LinePieces split_line(const std::string& line, bool& in_block) {
  LinePieces out;
  std::string cur_string;
  enum class St { kCode, kString, kChar, kLine, kBlock };
  St st = in_block ? St::kBlock : St::kCode;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    const char nxt = i + 1 < line.size() ? line[i + 1] : '\0';
    switch (st) {
      case St::kCode:
        if (c == '"') {
          st = St::kString;
          out.code += '"';
        } else if (c == '\'') {
          st = St::kChar;
          out.code += ' ';
        } else if (c == '/' && nxt == '/') {
          out.comment += line.substr(i + 2);
          i = line.size();
          st = St::kLine;
        } else if (c == '/' && nxt == '*') {
          st = St::kBlock;
          ++i;
        } else {
          out.code += c;
        }
        break;
      case St::kString:
        if (c == '\\' && nxt != '\0') {
          cur_string += c;
          cur_string += nxt;
          ++i;
        } else if (c == '"') {
          out.strings.push_back(cur_string);
          cur_string.clear();
          out.code += '"';
          st = St::kCode;
        } else {
          cur_string += c;
        }
        break;
      case St::kChar:
        if (c == '\\' && nxt != '\0') {
          ++i;
        } else if (c == '\'') {
          st = St::kCode;
        }
        break;
      case St::kLine:
        break;
      case St::kBlock:
        if (c == '*' && nxt == '/') {
          st = St::kCode;
          ++i;
        } else {
          out.comment += c;
        }
        break;
    }
  }
  if (st == St::kString || st == St::kChar) {
    // Unterminated literal on this line (multi-line string): keep what we
    // have; the compiler polices actual syntax.
    if (!cur_string.empty()) out.strings.push_back(cur_string);
  }
  in_block = st == St::kBlock;
  return out;
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// True when `word` occurs in `code` with identifier boundaries on both
/// sides. When `call_only`, the next non-space character must be '('.
bool has_token(const std::string& code, const std::string& word,
               bool call_only = false) {
  std::size_t pos = 0;
  while ((pos = code.find(word, pos)) != std::string::npos) {
    const bool lb = pos == 0 || !ident_char(code[pos - 1]);
    std::size_t end = pos + word.size();
    const bool rb = end >= code.size() || !ident_char(code[end]);
    if (lb && rb) {
      if (!call_only) return true;
      while (end < code.size() && code[end] == ' ') ++end;
      if (end < code.size() && code[end] == '(') return true;
    }
    pos += word.size();
  }
  return false;
}

/// Find a `1e9` / `1e-9`-style literal (optionally `1.0e9`) in `code`.
bool has_ns_conversion_literal(const std::string& code) {
  for (std::size_t i = 0; i < code.size(); ++i) {
    if (code[i] != '1') continue;
    if (i > 0 && (ident_char(code[i - 1]) || code[i - 1] == '.')) continue;
    std::size_t j = i + 1;
    if (j < code.size() && code[j] == '.') {
      ++j;
      std::size_t zeros = 0;
      while (j < code.size() && code[j] == '0') ++j, ++zeros;
      if (zeros == 0) continue;  // 1.5e9 is not a pure ns<->s factor
    }
    if (j >= code.size() || (code[j] != 'e' && code[j] != 'E')) continue;
    ++j;
    if (j < code.size() && (code[j] == '+' || code[j] == '-')) ++j;
    std::string digits;
    while (j < code.size() && std::isdigit(static_cast<unsigned char>(code[j]))) {
      digits += code[j++];
    }
    if (j < code.size() && (ident_char(code[j]) || code[j] == '.')) continue;
    if (digits == "9" || digits == "09") return true;
  }
  return false;
}

/// Find a function parameter of the form `<type> <name><end>` where `name`
/// satisfies `name_matches` and `<end>` is ',' or ')'. Members with
/// initializers (`= 0;`) deliberately do not match.
template <typename NameFn>
bool has_param(const std::string& code, const std::vector<std::string>& types,
               NameFn name_matches) {
  for (const std::string& ty : types) {
    std::size_t pos = 0;
    while ((pos = code.find(ty, pos)) != std::string::npos) {
      const bool lb = pos == 0 || !ident_char(code[pos - 1]);
      std::size_t j = pos + ty.size();
      pos += ty.size();
      if (!lb || (j < code.size() && ident_char(code[j]))) continue;
      while (j < code.size() && code[j] == ' ') ++j;
      std::string name;
      while (j < code.size() && ident_char(code[j])) name += code[j++];
      if (name.empty() || !name_matches(name)) continue;
      while (j < code.size() && code[j] == ' ') ++j;
      if (j < code.size() && (code[j] == ',' || code[j] == ')')) return true;
    }
  }
  return false;
}

bool ends_with(const std::string& s, const std::string& suf) {
  return s.size() >= suf.size() &&
         s.compare(s.size() - suf.size(), suf.size(), suf) == 0;
}

/// True when `word` occurs in `code` as a *method* call: identifier
/// boundaries, preceded (ignoring spaces) by '.' or '->', followed
/// (ignoring spaces) by '('. On success `*open_out` is the index of the
/// opening parenthesis. Distinguishes `flags.load(...)` from free
/// functions like `load_cached(...)`.
bool find_method_call(const std::string& code, const std::string& word,
                      std::size_t* open_out) {
  std::size_t pos = 0;
  while ((pos = code.find(word, pos)) != std::string::npos) {
    const bool lb = pos == 0 || !ident_char(code[pos - 1]);
    std::size_t end = pos + word.size();
    const bool rb = end >= code.size() || !ident_char(code[end]);
    if (lb && rb) {
      std::size_t before = pos;
      while (before > 0 && code[before - 1] == ' ') --before;
      const bool method =
          (before > 0 && code[before - 1] == '.') ||
          (before > 1 && code[before - 2] == '-' && code[before - 1] == '>');
      std::size_t open = end;
      while (open < code.size() && code[open] == ' ') ++open;
      if (method && open < code.size() && code[open] == '(') {
        *open_out = open;
        return true;
      }
    }
    pos += word.size();
  }
  return false;
}

/// True when `needle` occurs in `code` with identifier boundaries and the
/// token after it (ignoring spaces) begins an identifier satisfying
/// `take_decl`: used for `Mutex <name>` declaration spotting.
template <typename DeclFn>
void for_each_type_decl(const std::string& code, const std::string& type,
                        DeclFn take_decl) {
  std::size_t pos = 0;
  while ((pos = code.find(type, pos)) != std::string::npos) {
    const bool lb = pos == 0 || !ident_char(code[pos - 1]);
    std::size_t j = pos + type.size();
    pos += type.size();
    if (!lb || (j < code.size() && ident_char(code[j]))) continue;
    while (j < code.size() && code[j] == ' ') ++j;
    std::string name;
    while (j < code.size() && ident_char(code[j])) name += code[j++];
    if (name.empty()) continue;
    while (j < code.size() && code[j] == ' ') ++j;
    // A declaration ends in ';' (member), '{' (braced init) or '=' —
    // `Mutex` as a parameter or return type does not match.
    if (j < code.size() && (code[j] == ';' || code[j] == '{' ||
                            code[j] == '=')) {
      take_decl(name);
    }
  }
}

// ------------------------------------------------------------ findings ---

struct Finding {
  std::string file;  ///< path as reported
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

struct ScanContext {
  bool treat_as_src = false;  ///< selftest: classify everything as src/
  std::vector<Finding>* out = nullptr;
};

/// Suppressions and expectations parsed from one line's comment text.
struct CommentMarks {
  std::set<std::string> allowed;
  std::set<std::string> expected;
  std::set<std::string> expected_next;  ///< `expect-next:` — next line
  std::vector<std::string> malformed;   ///< lint-allow diagnostics
};

CommentMarks parse_comment(const std::string& comment) {
  CommentMarks m;
  static const std::string kAllow = "lint: allow(";
  std::size_t pos = 0;
  while ((pos = comment.find(kAllow, pos)) != std::string::npos) {
    pos += kAllow.size();
    const std::size_t close = comment.find(')', pos);
    if (close == std::string::npos) {
      m.malformed.push_back("unterminated lint: allow(...)");
      break;
    }
    const std::string rule = comment.substr(pos, close - pos);
    if (known_rules().count(rule) == 0) {
      m.malformed.push_back("unknown rule-id '" + rule + "' in suppression");
    } else {
      std::size_t why = 0;
      for (std::size_t r = close + 1; r < comment.size(); ++r) {
        if (comment[r] != ' ' && comment[r] != '\t') ++why;
      }
      if (why < 3) {
        m.malformed.push_back("suppression of '" + rule +
                              "' has no reason — say why it is safe");
      } else {
        m.allowed.insert(rule);
      }
    }
    pos = close;
  }
  // `expect-next:` expectations bind to the following line — for findings
  // that land on a line whose comment is itself under test (bad allows).
  for (const auto& [marker, into] :
       {std::pair<const char*, std::set<std::string>*>{"expect-next:",
                                                       &m.expected_next},
        std::pair<const char*, std::set<std::string>*>{"expect:",
                                                       &m.expected}}) {
    const std::size_t epos = comment.find(marker);
    if (epos == std::string::npos) continue;
    std::istringstream is(comment.substr(epos + std::strlen(marker)));
    std::string id;
    while (is >> id) {
      if (known_rules().count(id) != 0) into->insert(id);
    }
  }
  return m;
}

/// Scope of a file, derived from its repo-relative path.
struct FileScope {
  bool in_src = false;
  bool in_tests = false;
  std::string rel;  ///< forward-slash relative path
};

void scan_file(const fs::path& path, const FileScope& scope,
               const ScanContext& ctx, std::set<std::string>* env_seen,
               std::map<std::string, std::set<std::string>>* expects) {
  std::ifstream in(path);
  if (!in) {
    ctx.out->push_back({path.string(), 0, "lint-allow", "cannot open file"});
    return;
  }
  const bool in_src = scope.in_src || ctx.treat_as_src;
  const std::string& rel = scope.rel;

  const bool drift_layer = starts_with(rel, "src/drift/");
  const bool seconds_domain = drift_layer || starts_with(rel, "src/pcm/") ||
                              starts_with(rel, "src/readduo/");
  const bool units_header = rel == "src/common/units.h";

  std::string line;
  std::size_t lineno = 0;
  bool in_block = false;
  std::set<std::string> pending_allow;   // from a standalone comment line
  std::set<std::string> pending_expect;  // from `expect-next:`

  // guarded-field bookkeeping: every `_mu`-suffixed Mutex member must be
  // named by some RD_* capability annotation somewhere in the same file,
  // else the capability guards nothing (fields were left unannotated).
  struct MutexDecl {
    std::string name;
    std::size_t line;
    bool suppressed;
  };
  std::vector<MutexDecl> mutex_decls;
  std::set<std::string> annotation_refs;

  // atomic-order continuation: an atomic op whose argument list spans
  // physical lines is judged once its parenthesis closes.
  struct PendingAtomic {
    bool active = false;
    std::size_t line = 0;
    int depth = 0;
    bool seen_order = false;
    bool suppressed = false;
  };
  PendingAtomic pend_atomic;

  while (std::getline(in, line)) {
    ++lineno;
    LinePieces p = split_line(line, in_block);
    CommentMarks marks = parse_comment(p.comment);
    marks.expected.insert(pending_expect.begin(), pending_expect.end());
    pending_expect = marks.expected_next;
    for (const std::string& bad : marks.malformed) {
      ctx.out->push_back({path.string(), lineno, "lint-allow", bad});
    }
    // A standalone suppression comment line suppresses the next line.
    std::set<std::string> allowed = marks.allowed;
    allowed.insert(pending_allow.begin(), pending_allow.end());
    {
      std::string stripped = p.code;
      stripped.erase(std::remove_if(stripped.begin(), stripped.end(),
                                    [](char c) { return c == ' ' || c == '\t'; }),
                     stripped.end());
      pending_allow =
          stripped.empty() && !marks.allowed.empty() ? marks.allowed
                                                     : std::set<std::string>{};
    }
    if (!marks.expected.empty() && expects != nullptr) {
      (*expects)[path.string() + ":" + std::to_string(lineno)] =
          marks.expected;
    }

    auto report = [&](const std::string& rule, const std::string& msg) {
      if (allowed.count(rule) != 0) return;
      if (file_allowed(rel, rule)) return;
      ctx.out->push_back({path.string(), lineno, rule, msg});
    };

    // --- determinism -----------------------------------------------------
    if (has_token(p.code, "rand", true) || has_token(p.code, "srand", true) ||
        has_token(p.code, "drand48", true) ||
        has_token(p.code, "lrand48", true) ||
        has_token(p.code, "random_device")) {
      report("no-rand",
             "nondeterministic random source; use rd::Rng with an explicit "
             "seed (common/rng.h)");
    }
    if (has_token(p.code, "system_clock") ||
        has_token(p.code, "steady_clock") ||
        has_token(p.code, "high_resolution_clock") ||
        has_token(p.code, "clock_gettime", true) ||
        has_token(p.code, "gettimeofday", true)) {
      report("no-wallclock",
             "wall-clock read; simulated time must come from the event "
             "clock (rd::Ns), wall time only in the bench harness");
    }
    if (has_token(p.code, "getenv", true)) {
      report("no-getenv",
             "raw getenv; go through rd::env_cstr / parse_env_u64 in "
             "common/env.h so every knob is strictly parsed");
    }

    // --- container determinism -------------------------------------------
    if (in_src && !scope.in_tests &&
        (has_token(p.code, "unordered_map") ||
         has_token(p.code, "unordered_set"))) {
      report("no-unordered",
             "unordered container in result-producing code; iteration "
             "order is unspecified — use std::map / std::set or a vector");
    }

    // --- unit safety ------------------------------------------------------
    if (in_src && !units_header && !drift_layer &&
        has_ns_conversion_literal(p.code)) {
      report("unit-conv",
             "raw 1e9/1e-9 literal looks like a ns<->s conversion; use "
             "rd::Ns::seconds() / rd::from_seconds(), or suppress with a "
             "reason if it is not a time conversion");
    }
    if (in_src && !units_header &&
        has_param(p.code, {"int64_t", "uint64_t"}, [](const std::string& n) {
          return n == "ns" || ends_with(n, "_ns");
        })) {
      report("sig-ns",
             "function parameter carries raw integer nanoseconds; take "
             "rd::Ns so callers cannot pass the wrong unit");
    }
    if (in_src && !units_header && !seconds_domain &&
        has_param(p.code, {"double"}, [](const std::string& n) {
          return n == "seconds" || ends_with(n, "_seconds") ||
                 ends_with(n, "_s");
        })) {
      report("sig-seconds",
             "function parameter carries raw double seconds outside the "
             "drift/pcm/readduo seconds domain; take rd::Ns and convert "
             "at the boundary");
    }

    // --- concurrency discipline ------------------------------------------
    const bool conc_scope = in_src && !scope.in_tests;
    bool is_preproc = false;
    for (char c : p.code) {
      if (c == ' ' || c == '\t') continue;
      is_preproc = c == '#';
      break;
    }

    if (conc_scope && !is_preproc) {
      for (const char* w :
           {"mutex", "timed_mutex", "recursive_mutex", "shared_mutex",
            "lock_guard", "unique_lock", "scoped_lock", "condition_variable",
            "condition_variable_any"}) {
        if (has_token(p.code, w)) {
          report("no-bare-mutex",
                 std::string("raw std::") + w +
                     " outside common/thread_annotations.h; use rd::Mutex "
                     "/ rd::MutexLock / rd::CondVar so the thread-safety "
                     "analysis can see the lock");
          break;
        }
      }
    }

    if (conc_scope) {
      // `Mutex <name>_mu` declarations (qualified or not) ...
      const auto collect = [&](const std::string& name) {
        if (ends_with(name, "_mu") || ends_with(name, "_mu_")) {
          mutex_decls.push_back(
              {name, lineno, allowed.count("guarded-field") != 0});
        }
      };
      for_each_type_decl(p.code, "Mutex", collect);
      for_each_type_decl(p.code, "mutex", collect);
      // ... and the names every RD_* capability annotation references.
      for (const char* a :
           {"RD_GUARDED_BY", "RD_PT_GUARDED_BY", "RD_REQUIRES", "RD_ACQUIRE",
            "RD_RELEASE", "RD_TRY_ACQUIRE", "RD_EXCLUDES"}) {
        const std::string macro(a);
        std::size_t mpos = 0;
        while ((mpos = p.code.find(macro, mpos)) != std::string::npos) {
          const bool lb = mpos == 0 || !ident_char(p.code[mpos - 1]);
          std::size_t j = mpos + macro.size();
          mpos += macro.size();
          if (!lb || j >= p.code.size() || p.code[j] != '(') continue;
          const std::size_t close = p.code.find(')', j);
          const std::string args =
              p.code.substr(j + 1, close == std::string::npos
                                       ? std::string::npos
                                       : close - j - 1);
          std::string id;
          for (std::size_t k = 0; k <= args.size(); ++k) {
            if (k < args.size() && ident_char(args[k])) {
              id += args[k];
            } else if (!id.empty()) {
              annotation_refs.insert(id);
              id.clear();
            }
          }
        }
      }
    }

    if (pend_atomic.active) {
      if (p.code.find("memory_order") != std::string::npos) {
        pend_atomic.seen_order = true;
      }
      for (char c : p.code) {
        if (c == '(') ++pend_atomic.depth;
        if (c == ')' && --pend_atomic.depth == 0) break;
      }
      if (pend_atomic.depth <= 0) {
        if (!pend_atomic.seen_order && !pend_atomic.suppressed) {
          ctx.out->push_back(
              {path.string(), pend_atomic.line, "atomic-order",
               "atomic operation without an explicit std::memory_order; "
               "seq-cst-by-default hides the intended ordering — say "
               "relaxed/acquire/release"});
        }
        pend_atomic.active = false;
      }
    } else if (conc_scope) {
      for (const char* op :
           {"load", "store", "exchange", "fetch_add", "fetch_sub",
            "fetch_and", "fetch_or", "fetch_xor", "compare_exchange_weak",
            "compare_exchange_strong"}) {
        std::size_t open = 0;
        if (!find_method_call(p.code, op, &open)) continue;
        int depth = 0;
        bool closed = false;
        std::size_t i = open;
        for (; i < p.code.size(); ++i) {
          if (p.code[i] == '(') ++depth;
          if (p.code[i] == ')' && --depth == 0) {
            closed = true;
            break;
          }
        }
        const std::string args =
            p.code.substr(open, closed ? i - open + 1 : std::string::npos);
        const bool seen = args.find("memory_order") != std::string::npos;
        if (closed) {
          if (!seen) {
            report("atomic-order",
                   std::string("atomic ") + op +
                       " without an explicit std::memory_order; "
                       "seq-cst-by-default hides the intended ordering — "
                       "say relaxed/acquire/release");
          }
        } else {
          pend_atomic = {true, lineno, depth, seen,
                         allowed.count("atomic-order") != 0 ||
                             file_allowed(rel, "atomic-order")};
        }
        break;  // one finding per line is enough
      }
    }

    {
      std::size_t open = 0;
      if (find_method_call(p.code, "detach", &open)) {
        report("no-detach",
               "std::thread::detach leaks a running thread past its "
               "owner; every thread must be joined (see MemoryService "
               "workers / ThreadPool)");
      }
      for (const char* pat : {"new std::thread", "new thread"}) {
        const std::size_t np = p.code.find(pat);
        if (np == std::string::npos) continue;
        const bool lb = np == 0 || !ident_char(p.code[np - 1]);
        const std::size_t e = np + std::strlen(pat);
        const bool rb = e >= p.code.size() || !ident_char(p.code[e]);
        if (lb && rb) {
          report("no-detach",
                 "naked `new std::thread`; threads live in joining "
                 "containers (std::vector<std::thread> + join), never "
                 "behind raw new");
          break;
        }
      }
    }

    // --- env-var registry -------------------------------------------------
    for (const std::string& s : p.strings) {
      std::size_t pos = 0;
      static const std::string kPrefix = "READDUO_";
      while ((pos = s.find(kPrefix, pos)) != std::string::npos) {
        std::size_t end = pos + kPrefix.size();
        while (end < s.size() &&
               ((s[end] >= 'A' && s[end] <= 'Z') || s[end] == '_')) {
          ++end;
        }
        const std::string name = s.substr(pos, end - pos);
        if (name == kPrefix) {  // the bare prefix is not a knob name
          pos = end;
          continue;
        }
        if (env_seen != nullptr) env_seen->insert(name);
        if (env_registry().count(name) == 0) {
          report("env-registry",
                 "'" + name +
                     "' is not in the knob registry (tools/readduo_lint.cpp)"
                     " — register and document it in README.md");
        }
        pos = end;
      }
    }
  }

  // End of file: every collected `_mu` capability must have been named by
  // at least one RD_* annotation, else it guards nothing.
  for (const MutexDecl& d : mutex_decls) {
    if (d.suppressed || annotation_refs.count(d.name) != 0) continue;
    if (file_allowed(rel, "guarded-field")) continue;
    ctx.out->push_back(
        {path.string(), d.line, "guarded-field",
         "mutex member '" + d.name +
             "' is referenced by no RD_GUARDED_BY/RD_REQUIRES/RD_ACQUIRE "
             "annotation in this file — annotate the fields it guards "
             "(see common/thread_annotations.h)"});
  }
}

// ----------------------------------------------------------------- walk ---

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc";
}

std::vector<fs::path> collect(const fs::path& dir) {
  std::vector<fs::path> files;
  if (!fs::exists(dir)) return files;
  for (const auto& e : fs::recursive_directory_iterator(dir)) {
    if (!e.is_regular_file() || !lintable(e.path())) continue;
    if (e.path().string().find("lint_fixtures") != std::string::npos) {
      continue;  // seeded-violation fixtures are scanned by --selftest only
    }
    files.push_back(e.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string rel_to(const fs::path& p, const fs::path& root) {
  std::string rel = fs::relative(p, root).generic_string();
  return rel;
}

int run_repo_scan(const fs::path& root, std::size_t max_findings) {
  std::vector<Finding> findings;
  ScanContext ctx;
  ctx.out = &findings;
  std::set<std::string> env_seen;
  std::size_t nfiles = 0;
  for (const char* top : {"src", "bench", "tools", "tests"}) {
    for (const fs::path& f : collect(root / top)) {
      FileScope scope;
      scope.rel = rel_to(f, root);
      scope.in_src = starts_with(scope.rel, "src/") ||
                     starts_with(scope.rel, "tools/") ||
                     starts_with(scope.rel, "bench/");
      scope.in_tests = starts_with(scope.rel, "tests/");
      scan_file(f, scope, ctx, &env_seen, nullptr);
      ++nfiles;
    }
  }
  // Registry <-> README coverage: a knob in the registry must be
  // documented; `env-registry` above already caught unregistered literals.
  {
    std::ifstream readme(root / "README.md");
    std::stringstream ss;
    ss << readme.rdbuf();
    const std::string text = ss.str();
    for (const std::string& name : env_registry()) {
      if (text.find(name) == std::string::npos) {
        findings.push_back({(root / "README.md").string(), 0, "env-registry",
                            "registered knob '" + name +
                                "' is not documented in README.md"});
      }
    }
  }
  // --max-findings truncates the per-finding listing only: the summary
  // line below always carries the exact total, and the exit code is
  // unaffected, so CI logs stay short without hiding the verdict.
  std::size_t printed = 0;
  for (const Finding& f : findings) {
    if (max_findings != 0 && printed == max_findings) {
      std::printf("... %zu more finding(s) suppressed by --max-findings\n",
                  findings.size() - printed);
      break;
    }
    std::printf("%s:%zu: %s: %s\n", f.file.c_str(), f.line, f.rule.c_str(),
                f.message.c_str());
    ++printed;
  }
  std::printf("readduo_lint: %zu files scanned, %zu violation(s)\n", nfiles,
              findings.size());
  return findings.empty() ? 0 : 1;
}

int run_selftest(const fs::path& dir) {
  std::vector<Finding> findings;
  ScanContext ctx;
  ctx.treat_as_src = true;
  ctx.out = &findings;
  std::map<std::string, std::set<std::string>> expects;
  std::vector<fs::path> files;
  for (const auto& e : fs::recursive_directory_iterator(dir)) {
    if (e.is_regular_file() && lintable(e.path())) files.push_back(e.path());
  }
  std::sort(files.begin(), files.end());
  for (const fs::path& f : files) {
    FileScope scope;
    scope.rel = "src/" + f.filename().generic_string();
    scan_file(f, scope, ctx, nullptr, &expects);
  }
  // Exact match: every expected (line, rule) fired, nothing else fired.
  std::map<std::string, std::set<std::string>> got;
  for (const Finding& f : findings) {
    got[f.file + ":" + std::to_string(f.line)].insert(f.rule);
  }
  int rc = 0;
  for (const auto& [loc, rules] : expects) {
    for (const std::string& r : rules) {
      if (got.count(loc) == 0 || got.at(loc).count(r) == 0) {
        std::printf("%s: selftest: expected rule '%s' did not fire\n",
                    loc.c_str(), r.c_str());
        rc = 1;
      }
    }
  }
  for (const auto& [loc, rules] : got) {
    for (const std::string& r : rules) {
      if (expects.count(loc) == 0 || expects.at(loc).count(r) == 0) {
        std::printf("%s: selftest: unexpected finding '%s'\n", loc.c_str(),
                    r.c_str());
        rc = 1;
      }
    }
  }
  std::printf("readduo_lint selftest: %zu fixture file(s), %zu finding(s), "
              "%s\n",
              files.size(), findings.size(), rc == 0 ? "OK" : "MISMATCH");
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  std::size_t max_findings = 0;  // 0 = print everything
  for (auto it = args.begin(); it != args.end();) {
    static const std::string kFlag = "--max-findings=";
    if (it->rfind(kFlag, 0) == 0) {
      const std::string value = it->substr(kFlag.size());
      char* end = nullptr;
      const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
      if (value.empty() || (end != nullptr && *end != '\0')) {
        std::fprintf(stderr, "readduo_lint: bad %s'%s'\n", kFlag.c_str(),
                     value.c_str());
        return 2;
      }
      max_findings = static_cast<std::size_t>(v);
      it = args.erase(it);
    } else {
      ++it;
    }
  }
  if (args.size() == 2 && args[0] == "--selftest") {
    return run_selftest(args[1]);
  }
  if (args.size() == 1) {
    return run_repo_scan(args[0], max_findings);
  }
  std::fprintf(stderr,
               "usage: readduo_lint [--max-findings=N] <repo-root> | "
               "readduo_lint --selftest <fixture-dir>\n");
  return 2;
}
