// readduo_load — closed-loop load generator for the memory service.
//
//   readduo_load --requests=1000000 --rps=2000000 --scheme=Hybrid
//   READDUO_THREADS=4 READDUO_SERVICE_SHARDS=8 readduo_load
//
// Replays synthetic clients against a service::MemoryService at a
// configurable *virtual* arrival rate: one submission thread generates
// reads/writes with the chosen workload's locality and write mix, stamps
// them with virtual arrival times 1/rps apart, and pushes them into the
// service's bounded shard queues (spinning on backpressure — the closed
// loop). Live p50/p95/p99 snapshots from the histogram layer print while
// the run progresses; the final READDUO_METRICS JSON summarizes the run
// (optionally duplicated to --summary=<file> for run_all_benches.sh).
//
// The latency distributions are virtual-time quantities and bit-identical
// for a fixed (seed, flags, READDUO_SERVICE_*) configuration regardless
// of READDUO_THREADS or wall-clock scheduling; only the throughput lines
// (requests per wall second) vary per host.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>

#include "common/check.h"
#include "common/rng.h"
#include "service/memory_service.h"
#include "stats/json.h"
#include "trace/workload.h"

using namespace rd;

namespace {

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "\n"
      "options:\n"
      "  --requests=<n>         requests to complete (default 1000000)\n"
      "  --rps=<r>              virtual arrival rate, req/s (default 2e6)\n"
      "  --scheme=<name>        Ideal | Scrubbing | M-metric | Hybrid |\n"
      "                         LWT | Select (default Hybrid)\n"
      "  --workload=<name>      locality/write-mix template (default mcf)\n"
      "  --write-fraction=<f>   override the workload's write mix\n"
      "  --seed=<n>             RNG seed (default 42)\n"
      "  --shards=<n>           chips (default 4)\n"
      "  --queue=<n>            per-shard submission queue bound\n"
      "  --batch=<n>            admission batch size\n"
      "  --report-every=<n>     live report every n completions\n"
      "                         (default 100000; 0 = quiet)\n"
      "  --summary=<file>       also write the final JSON to <file>\n"
      "\n"
      "environment:\n"
      "  READDUO_THREADS            service worker threads\n"
      "  READDUO_SERVICE_SHARDS     default for --shards\n"
      "  READDUO_SERVICE_QUEUE      default for --queue\n"
      "  READDUO_SERVICE_BATCH      default for --batch\n",
      argv0);
}

bool parse_flag(const char* arg, const char* name, std::string& out) {
  const std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) == 0 && arg[n] == '=') {
    out = arg + n + 1;
    return true;
  }
  return false;
}

readduo::SchemeKind scheme_by_name(const std::string& s) {
  if (s == "Ideal") return readduo::SchemeKind::kIdeal;
  if (s == "TLC") return readduo::SchemeKind::kTlc;
  if (s == "Scrubbing") return readduo::SchemeKind::kScrubbing;
  if (s == "M-metric") return readduo::SchemeKind::kMMetric;
  if (s == "Hybrid") return readduo::SchemeKind::kHybrid;
  if (s == "LWT") return readduo::SchemeKind::kLwt;
  if (s == "Select") return readduo::SchemeKind::kSelect;
  RD_CHECK_MSG(false, "unknown scheme: " + s);
  return readduo::SchemeKind::kHybrid;
}

/// {"count":..,"mean_ns":..,"p50_ns":..,...} for one latency class.
std::string class_json(const stats::LatencyHistogram& h) {
  const stats::LatencyHistogram::Snapshot s = h.snapshot();
  stats::JsonWriter j;
  j.add("count", s.count)
      .add("mean_ns", s.mean_ns)
      .add("p50_ns", s.p50_ns)
      .add("p95_ns", s.p95_ns)
      .add("p99_ns", s.p99_ns)
      .add("max_ns", static_cast<std::int64_t>(s.max_ns));
  return j.str();
}

// lint: allow(sig-seconds) wall_s is host wall-clock, not simulated time
void live_report(const service::ServiceStats& st, double wall_s,
                 std::uint64_t target) {
  const stats::LatencyHistogram::Snapshot rd =
      st.metrics.demand_reads().snapshot();
  const stats::LatencyHistogram::Snapshot wr =
      st.metrics.lat(stats::ReqClass::kDemandWrite).snapshot();
  std::printf(
      "[load] wall=%.1fs completed=%llu/%llu (%.0f%%) rps=%.0f "
      "vt=%.1fms | read p50=%.0f p95=%.0f p99=%.0f ns | "
      "write p50=%.0f p95=%.0f p99=%.0f ns\n",
      wall_s, static_cast<unsigned long long>(st.completed),
      static_cast<unsigned long long>(target),
      100.0 * static_cast<double>(st.completed) /
          static_cast<double>(target),
      wall_s > 0 ? static_cast<double>(st.completed) / wall_s : 0.0,
      static_cast<double>(st.virtual_time.v) / 1e6, rd.p50_ns, rd.p95_ns,
      rd.p99_ns, wr.p50_ns, wr.p95_ns, wr.p99_ns);
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t requests = 1'000'000;
  double rps = 2e6;
  std::string scheme = "Hybrid";
  std::string workload = "mcf";
  double write_fraction = -1.0;
  std::uint64_t seed = 42;
  std::uint64_t report_every = 100'000;
  std::string summary_path;
  std::string shards_flag, queue_flag, batch_flag;

  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (parse_flag(argv[i], "--requests", v)) {
      requests = std::stoull(v);
    } else if (parse_flag(argv[i], "--rps", v)) {
      rps = std::stod(v);
    } else if (parse_flag(argv[i], "--scheme", v)) {
      scheme = v;
    } else if (parse_flag(argv[i], "--workload", v)) {
      workload = v;
    } else if (parse_flag(argv[i], "--write-fraction", v)) {
      write_fraction = std::stod(v);
    } else if (parse_flag(argv[i], "--seed", v)) {
      seed = std::stoull(v);
    } else if (parse_flag(argv[i], "--shards", v)) {
      shards_flag = v;
    } else if (parse_flag(argv[i], "--queue", v)) {
      queue_flag = v;
    } else if (parse_flag(argv[i], "--batch", v)) {
      batch_flag = v;
    } else if (parse_flag(argv[i], "--report-every", v)) {
      report_every = std::stoull(v);
    } else if (parse_flag(argv[i], "--summary", v)) {
      summary_path = v;
    } else {
      usage(argv[0]);
      return 2;
    }
  }
  RD_CHECK(requests >= 1);
  RD_CHECK(rps > 0.0);

  const trace::Workload& w = trace::workload_by_name(workload);
  if (write_fraction < 0.0) {
    write_fraction = w.wpki / (w.rpki + w.wpki);
  }

  service::ServiceConfig cfg;
  cfg.sim.seed = seed;
  cfg.scheme = scheme_by_name(scheme);
  cfg.workload = w;
  service::apply_service_env(cfg);  // env defaults, flags override
  if (!shards_flag.empty()) {
    cfg.num_shards = static_cast<unsigned>(std::stoul(shards_flag));
  }
  if (!queue_flag.empty()) cfg.queue_capacity = std::stoull(queue_flag);
  if (!batch_flag.empty()) cfg.batch_size = std::stoull(batch_flag);

  service::MemoryService svc(cfg);
  std::printf(
      "[load] scheme=%s workload=%s shards=%u threads=%u queue=%zu "
      "batch=%zu rps=%.0f write_fraction=%.3f requests=%llu seed=%llu\n",
      scheme.c_str(), workload.c_str(), svc.num_shards(),
      svc.worker_threads(), cfg.queue_capacity, cfg.batch_size, rps,
      write_fraction, static_cast<unsigned long long>(requests),
      static_cast<unsigned long long>(seed));

  // Client-side draws use their own decorrelated stream so the request
  // sequence is a pure function of the seed.
  Rng rng(seed, /*stream=*/0x10ad);
  const Ns gap{std::max<std::int64_t>(1, from_seconds(1.0 / rps).v)};
  const auto t0 = std::chrono::steady_clock::now();
  auto wall_s = [&t0] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
  };

  Ns t{0};
  std::uint64_t backpressure_spins = 0;
  std::uint64_t next_report = report_every;
  for (std::uint64_t i = 1; i <= requests; ++i) {
    service::Request r;
    r.id = i;
    r.arrival = t;
    t += gap;
    r.is_write = rng.bernoulli(write_fraction);
    if (!r.is_write && rng.bernoulli(w.archive_read_fraction)) {
      r.archive = true;
      r.line = w.footprint_lines +
               rng.uniform_below(std::max<std::uint64_t>(1, w.archive_lines));
    } else {
      r.line = rng.zipf(w.footprint_lines, w.zipf_s);
    }
    while (!svc.submit(r)) {
      // Closed loop: a full shard queue pushes back on the client.
      ++backpressure_spins;
      std::this_thread::yield();
    }
    if (report_every > 0 && i >= next_report) {
      const service::ServiceStats st = svc.stats();
      live_report(st, wall_s(), requests);
      next_report = i + report_every;
    }
  }
  svc.drain();
  const service::ServiceStats st = svc.stats();
  live_report(st, wall_s(), requests);
  svc.stop();
  const double wall = wall_s();

  RD_CHECK_MSG(st.completed == requests,
               "service lost requests: completed != submitted");

  stats::JsonWriter j;
  j.add("tool", std::string("readduo_load"))
      .add("scheme", scheme)
      .add("workload", workload)
      .add("shards", static_cast<std::uint64_t>(svc.num_shards()))
      .add("threads", static_cast<std::uint64_t>(svc.worker_threads()))
      .add("queue", static_cast<std::uint64_t>(cfg.queue_capacity))
      .add("batch", static_cast<std::uint64_t>(cfg.batch_size))
      .add("seed", seed)
      .add("rps_virtual", rps)
      .add("write_fraction", write_fraction)
      .add("requests", requests)
      .add("completed", st.completed)
      .add("rejected_submissions", st.rejected)
      .add("backpressure_spins", backpressure_spins)
      .add("virtual_time_ns",
           static_cast<std::int64_t>(st.virtual_time.v))
      .add("wall_ms", wall * 1e3)
      .add("throughput_rps_wall",
           wall > 0 ? static_cast<double>(st.completed) / wall : 0.0)
      .add("scrubs", st.scrubs)
      .add("write_cancellations", st.write_cancellations)
      .add("scrub_rewrites_dropped", st.scrub_rewrites_dropped)
      .add_raw("demand_reads", class_json(st.metrics.demand_reads()));
  for (std::size_t c = 0; c < stats::kNumReqClasses; ++c) {
    const auto cls = static_cast<stats::ReqClass>(c);
    if (st.metrics.lat(cls).count() == 0) continue;
    j.add_raw(stats::req_class_name(cls), class_json(st.metrics.lat(cls)));
  }
  const std::string json = j.str();
  std::printf("READDUO_METRICS %s", json.c_str());
  if (!summary_path.empty()) {
    std::ofstream out(summary_path);
    RD_CHECK_MSG(out.good(), "cannot write --summary file");
    out << json;
  }
  return 0;
}
