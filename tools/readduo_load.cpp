// readduo_load — closed-loop load generator for the memory service.
//
//   readduo_load --requests=1000000 --rps=2000000 --scheme=Hybrid
//   READDUO_THREADS=4 READDUO_SERVICE_SHARDS=8 readduo_load
//
// Replays synthetic clients against a service::MemoryService at a
// configurable *virtual* arrival rate: one submission thread generates
// reads/writes with the chosen workload's locality and write mix, stamps
// them with virtual arrival times 1/rps apart, and pushes them into the
// service's bounded shard queues (spinning on backpressure — the closed
// loop). Live p50/p95/p99 snapshots from the histogram layer print while
// the run progresses; the final READDUO_METRICS JSON summarizes the run
// (optionally duplicated to --summary=<file> for run_all_benches.sh).
//
// The latency distributions are virtual-time quantities and bit-identical
// for a fixed (seed, flags, READDUO_SERVICE_*) configuration regardless
// of READDUO_THREADS or wall-clock scheduling; only the throughput lines
// (requests per wall second) vary per host.
//
// Distributed mode (--connect=<addr>, DESIGN.md §12): instead of an
// in-process service, N wire clients (--clients) drive a running
// readduo_serve over the framed protocol. The request stream is
// pregenerated with exactly the in-process draw order and split
// round-robin: client k submits requests k, k+N, ... with per-client
// seqs 1, 2, ... Because global arrivals strictly increase, the server's
// sequence-merge rule reassembles precisely the in-process admission
// order for any client count — so the final report (fetched from the
// server, cross-checked bit-exactly against the merged client-side
// completion histograms) matches an in-process run of the same seed.
#include <array>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "config/loader.h"
#include "net/client.h"
#include "net/frame.h"
#include "net/wire_stats.h"
#include "service/memory_service.h"
#include "stats/histogram.h"
#include "stats/json.h"
#include "trace/workload.h"

using namespace rd;

namespace {

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "\n"
      "options:\n"
      "  --requests=<n>         requests to complete (default 1000000)\n"
      "  --rps=<r>              virtual arrival rate, req/s (default 2e6)\n"
      "  --scheme=<name>        Ideal | Scrubbing | M-metric | Hybrid |\n"
      "                         LWT | Select (default Hybrid)\n"
      "  --workload=<name>      locality/write-mix template (default mcf)\n"
      "  --device=<file>        device config (overrides READDUO_DEVICE;\n"
      "                         see configs/ and docs/DEVICE_CONFIGS.md)\n"
      "  --write-fraction=<f>   override the workload's write mix\n"
      "  --seed=<n>             RNG seed (default 42)\n"
      "  --shards=<n>           chips (default 4)\n"
      "  --queue=<n>            per-shard submission queue bound\n"
      "  --batch=<n>            admission batch size\n"
      "  --report-every=<n>     live report every n completions\n"
      "                         (default 100000; 0 = quiet)\n"
      "  --summary=<file>       also write the final JSON to <file>\n"
      "  --connect=<addr>       distributed mode: drive a readduo_serve\n"
      "                         at unix:<path> / tcp:<host>:<port>\n"
      "  --clients=<n>          wire clients in --connect mode (default 1)\n"
      "  --window=<n>           per-client in-flight bound (default 256)\n"
      "  --crosscheck=<0|1>     verify server histograms against merged\n"
      "                         client-side ones (default 1)\n"
      "\n"
      "environment:\n"
      "  READDUO_THREADS            service worker threads\n"
      "  READDUO_SERVICE_SHARDS     default for --shards\n"
      "  READDUO_SERVICE_QUEUE      default for --queue\n"
      "  READDUO_SERVICE_BATCH      default for --batch\n",
      argv0);
}

bool parse_flag(const char* arg, const char* name, std::string& out) {
  const std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) == 0 && arg[n] == '=') {
    out = arg + n + 1;
    return true;
  }
  return false;
}

readduo::SchemeKind scheme_by_name(const std::string& s) {
  if (s == "Ideal") return readduo::SchemeKind::kIdeal;
  if (s == "TLC") return readduo::SchemeKind::kTlc;
  if (s == "Scrubbing") return readduo::SchemeKind::kScrubbing;
  if (s == "M-metric") return readduo::SchemeKind::kMMetric;
  if (s == "Hybrid") return readduo::SchemeKind::kHybrid;
  if (s == "LWT") return readduo::SchemeKind::kLwt;
  if (s == "Select") return readduo::SchemeKind::kSelect;
  RD_CHECK_MSG(false, "unknown scheme: " + s);
  return readduo::SchemeKind::kHybrid;
}

/// {"count":..,"mean_ns":..,"p50_ns":..,...} for one latency class.
std::string class_json(const stats::LatencyHistogram& h) {
  const stats::LatencyHistogram::Snapshot s = h.snapshot();
  stats::JsonWriter j;
  j.add("count", s.count)
      .add("mean_ns", s.mean_ns)
      .add("p50_ns", s.p50_ns)
      .add("p95_ns", s.p95_ns)
      .add("p99_ns", s.p99_ns)
      .add("max_ns", static_cast<std::int64_t>(s.max_ns));
  return j.str();
}

// lint: allow(sig-seconds) wall_s is host wall-clock, not simulated time
void live_report(const service::ServiceStats& st, double wall_s,
                 std::uint64_t target) {
  const stats::LatencyHistogram::Snapshot rd =
      st.metrics.demand_reads().snapshot();
  const stats::LatencyHistogram::Snapshot wr =
      st.metrics.lat(stats::ReqClass::kDemandWrite).snapshot();
  std::printf(
      "[load] wall=%.1fs completed=%llu/%llu (%.0f%%) rps=%.0f "
      "vt=%.1fms | read p50=%.0f p95=%.0f p99=%.0f ns | "
      "write p50=%.0f p95=%.0f p99=%.0f ns\n",
      wall_s, static_cast<unsigned long long>(st.completed),
      static_cast<unsigned long long>(target),
      100.0 * static_cast<double>(st.completed) /
          static_cast<double>(target),
      wall_s > 0 ? static_cast<double>(st.completed) / wall_s : 0.0,
      static_cast<double>(st.virtual_time.v) / 1e6, rd.p50_ns, rd.p95_ns,
      rd.p99_ns, wr.p50_ns, wr.p95_ns, wr.p99_ns);
  std::fflush(stdout);
}

/// One pregenerated request (distributed mode). The draw order inside
/// next_request is the contract shared with the in-process loop: change
/// one and the wire/in-process bit-identity check fails.
struct GenReq {
  std::uint64_t line = 0;
  Ns arrival{0};
  bool is_write = false;
  bool archive = false;
};

GenReq next_request(Rng& rng, Ns& t, Ns gap, double write_fraction,
                    const trace::Workload& w) {
  GenReq g;
  g.arrival = t;
  t += gap;
  g.is_write = rng.bernoulli(write_fraction);
  if (!g.is_write && rng.bernoulli(w.archive_read_fraction)) {
    g.archive = true;
    g.line = w.footprint_lines +
             rng.uniform_below(std::max<std::uint64_t>(1, w.archive_lines));
  } else {
    g.line = rng.zipf(w.footprint_lines, w.zipf_s);
  }
  return g;
}

/// Client-side tallies of one wire client (its thread's exclusively).
struct WireResult {
  std::array<stats::LatencyHistogram, stats::kNumReqClasses> hist;
  std::uint64_t retries = 0;
  std::uint64_t completions = 0;
};

/// Register with the server. Every client must hello before ANY client
/// submits — the sequence merge gates releases on all registered
/// watermarks, so a late registration could interleave behind requests
/// already admitted (run_connect hellos sequentially up front).
void wire_hello(net::Client& cli, std::uint64_t client_id) {
  std::string hello;
  net::put_u64(hello, client_id);
  // Device echo: the server refuses a hello naming a different device
  // (kBadState), so a distributed run can never silently mix devices.
  const std::string& dev = config::active_device().name;
  net::put_u32(hello, static_cast<std::uint32_t>(dev.size()));
  hello += dev;
  for (;;) {
    cli.send_frame(net::Op::kHello, 0, hello);
    const net::Frame f = cli.recv_frame();
    if (f.type == net::type_of(net::Status::kOk)) break;
    // An injected wire fault can land on the hello body; resend.
    RD_CHECK_MSG(f.type == net::type_of(net::Status::kBadFrame),
                 "hello rejected by server");
  }
}

/// Drive one already-helloed wire client over its round-robin slice of
/// the stream: pipelined submission behind a bounded in-flight window
/// with kRetry/kBadFrame resends, then drain.
void run_wire_client(net::Client& cli, const std::vector<GenReq>& stream,
                     std::size_t offset, std::size_t stride,
                     std::size_t window, WireResult& out) {
  // seq -> (opcode, body) of every unacknowledged submission.
  std::map<std::uint64_t, std::pair<net::Op, net::RequestBody>> inflight;
  const auto handle = [&cli, &inflight, &out](const net::Frame& f) {
    if (f.type == net::type_of(net::Status::kDone)) {
      net::CompletionBody b;
      RD_CHECK_MSG(net::decode_completion_body(f.payload, b),
                   "malformed completion body");
      RD_CHECK(b.cls < stats::kNumReqClasses);
      out.hist[b.cls].record(Ns{b.complete.v - b.enqueue.v});
      ++out.completions;
      RD_CHECK_MSG(inflight.erase(f.id) == 1, "stray completion id");
      return;
    }
    if (f.type == net::type_of(net::Status::kRetry) ||
        f.type == net::type_of(net::Status::kBadFrame)) {
      // Backpressure, a seq gap behind a rejected frame, or an injected
      // wire fault: resend the same seq. Replies arrive in server
      // receive order, so resends re-close gaps in ascending order.
      const auto it = inflight.find(f.id);
      RD_CHECK_MSG(it != inflight.end(), "retry for unknown seq");
      ++out.retries;
      cli.send_frame(it->second.first, f.id,
                     net::encode_request_body(it->second.second));
      return;
    }
    RD_CHECK_MSG(false, "unexpected reply type "
                            << static_cast<unsigned>(f.type));
  };

  std::uint64_t seq = 0;
  for (std::size_t i = offset; i < stream.size(); i += stride) {
    const GenReq& g = stream[i];
    ++seq;
    const net::Op op = g.is_write  ? net::Op::kWrite
                       : g.archive ? net::Op::kScrub
                                   : net::Op::kRead;
    const net::RequestBody body{seq, g.line, g.arrival};
    cli.send_frame(op, seq, net::encode_request_body(body));
    inflight.emplace(seq, std::make_pair(op, body));
    while (inflight.size() >= window) handle(cli.recv_frame());
    net::Frame f;
    while (cli.try_recv(f)) handle(f);
  }
  // Drain immediately — NOT after the window empties: the tail of
  // completions only retires once the server knows every client is done
  // (nothing else advances virtual time past the last arrival). The ack
  // arrives after the outstanding completions, which `handle` keeps
  // absorbing meanwhile.
  const std::uint64_t drain_id = seq + 1;
  std::string drain_body;
  net::put_u64(drain_body, seq);
  cli.send_frame(net::Op::kDrain, drain_id, drain_body);
  bool drained = false;
  while (!drained || !inflight.empty()) {
    const net::Frame f = cli.recv_frame();
    if (f.id == drain_id) {
      if (f.type == net::type_of(net::Status::kOk)) {
        drained = true;
        continue;
      }
      // A wire fault can corrupt the drain frame itself; resend it.
      RD_CHECK_MSG(f.type == net::type_of(net::Status::kBadFrame),
                   "drain rejected by server");
      cli.send_frame(net::Op::kDrain, drain_id, drain_body);
      continue;
    }
    handle(f);
  }
}

/// Everything the distributed-mode driver needs from flag parsing.
struct ConnectRun {
  std::string addr;
  std::uint64_t requests = 0;
  double rps = 0.0;
  std::string scheme;
  std::string workload;
  double write_fraction = 0.0;
  std::uint64_t seed = 0;
  std::size_t clients = 1;
  std::size_t window = 256;
  bool crosscheck = true;
  std::string summary_path;
};

/// Distributed mode: pregenerate the exact in-process request stream,
/// split it round-robin over N wire clients, drive a readduo_serve, then
/// report from the server's stats blob — cross-checked bit-exactly
/// against the merged client-side completion histograms.
int run_connect(const ConnectRun& rc, const trace::Workload& w) {
  RD_CHECK(rc.clients >= 1);
  RD_CHECK(rc.window >= 1);
  std::printf(
      "[load] connect=%s clients=%zu window=%zu rps=%.0f "
      "write_fraction=%.3f requests=%llu seed=%llu\n",
      rc.addr.c_str(), rc.clients, rc.window, rc.rps, rc.write_fraction,
      static_cast<unsigned long long>(rc.requests),
      static_cast<unsigned long long>(rc.seed));
  std::fflush(stdout);

  // Same stream, seed, and draw order as the in-process loop. Global
  // arrivals strictly increase, so the server's (arrival, client, seq)
  // merge reassembles exactly this order for any client count.
  Rng rng(rc.seed, /*stream=*/0x10ad);
  const Ns gap{std::max<std::int64_t>(1, from_seconds(1.0 / rc.rps).v)};
  Ns t{0};
  std::vector<GenReq> stream;
  stream.reserve(rc.requests);
  for (std::uint64_t i = 0; i < rc.requests; ++i) {
    stream.push_back(next_request(rng, t, gap, rc.write_fraction, w));
  }

  const auto t0 = std::chrono::steady_clock::now();

  std::vector<net::Client> conns(rc.clients);
  for (std::size_t k = 0; k < rc.clients; ++k) {
    conns[k] = net::Client::connect_to(rc.addr);
    // Sequential hellos before any submission: every watermark must be
    // registered before the first release (see wire_hello).
    wire_hello(conns[k], /*client_id=*/k + 1);
  }
  std::vector<WireResult> results(rc.clients);
  std::vector<std::thread> threads;
  threads.reserve(rc.clients);
  for (std::size_t k = 0; k < rc.clients; ++k) {
    threads.emplace_back([&, k] {
      run_wire_client(conns[k], stream, /*offset=*/k,
                      /*stride=*/rc.clients, rc.window, results[k]);
    });
  }
  for (std::thread& th : threads) th.join();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  // Every client has drained, so the server-side snapshot is final.
  conns[0].send_frame(net::Op::kStats, 0, "");
  const net::Frame sf = conns[0].recv_frame();
  RD_CHECK_MSG(sf.type == net::type_of(net::Status::kStats),
               "stats request rejected");
  service::ServiceStats st;
  net::WireServiceInfo info;
  RD_CHECK_MSG(net::decode_stats(sf.payload, st, info),
               "malformed stats blob");

  for (net::Client& c : conns) {
    c.send_frame(net::Op::kBye, 0, "");
    // Ack, then orderly server-side close.
    while (c.recv_opt().has_value()) {
    }
    c.close();
  }

  std::array<stats::LatencyHistogram, stats::kNumReqClasses> merged;
  std::uint64_t retries = 0;
  std::uint64_t completions = 0;
  for (const WireResult& r : results) {
    for (std::size_t c = 0; c < stats::kNumReqClasses; ++c) {
      merged[c].merge(r.hist[c]);
    }
    retries += r.retries;
    completions += r.completions;
  }
  RD_CHECK_MSG(completions == rc.requests,
               "wire clients lost completions");
  RD_CHECK_MSG(st.completed == rc.requests,
               "server lost requests: completed != submitted");
  if (rc.crosscheck) {
    // Demand classes (kRRead..kDemandWrite) originate only from client
    // requests, so the server's histograms must equal the merge of what
    // the clients observed — bit-exact, bucket by bucket. Internal
    // classes (conversion writes, scrub rewrites) are server-only.
    for (std::size_t c = 0; c <= static_cast<std::size_t>(
                                     stats::ReqClass::kDemandWrite);
         ++c) {
      RD_CHECK_MSG(
          merged[c] == st.metrics.lat(static_cast<stats::ReqClass>(c)),
          "wire/server histogram mismatch for class "
              << stats::req_class_name(static_cast<stats::ReqClass>(c)));
    }
  }

  // Same virtual-time field lines as the in-process report (sourced from
  // the server blob); wire-only extras carry a wire_ prefix so the
  // sweep's determinism diffs can filter them alongside wall/spins.
  stats::JsonWriter j;
  j.add("tool", std::string("readduo_load"))
      .add("scheme", rc.scheme)
      .add("device", config::active_device().name)
      .add("workload", rc.workload)
      .add("shards", info.shards)
      .add("threads", info.threads)
      .add("queue", info.queue)
      .add("batch", info.batch)
      .add("seed", rc.seed)
      .add("rps_virtual", rc.rps)
      .add("write_fraction", rc.write_fraction)
      .add("requests", rc.requests)
      .add("completed", st.completed)
      .add("rejected_submissions", st.rejected)
      .add("wire_clients", static_cast<std::uint64_t>(rc.clients))
      .add("wire_window", static_cast<std::uint64_t>(rc.window))
      .add("wire_retries", retries)
      .add("virtual_time_ns", static_cast<std::int64_t>(st.virtual_time.v))
      .add("wall_ms", wall * 1e3)
      .add("throughput_rps_wall",
           wall > 0 ? static_cast<double>(st.completed) / wall : 0.0)
      .add("scrubs", st.scrubs)
      .add("write_cancellations", st.write_cancellations)
      .add("scrub_rewrites_dropped", st.scrub_rewrites_dropped)
      .add_raw("demand_reads", class_json(st.metrics.demand_reads()));
  for (std::size_t c = 0; c < stats::kNumReqClasses; ++c) {
    const auto cls = static_cast<stats::ReqClass>(c);
    if (st.metrics.lat(cls).count() == 0) continue;
    j.add_raw(stats::req_class_name(cls), class_json(st.metrics.lat(cls)));
  }
  const std::string json = j.str();
  std::printf("READDUO_METRICS %s", json.c_str());
  if (!rc.summary_path.empty()) {
    std::ofstream out(rc.summary_path);
    RD_CHECK_MSG(out.good(), "cannot write --summary file");
    out << json;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t requests = 1'000'000;
  double rps = 2e6;
  std::string scheme = "Hybrid";
  std::string workload = "mcf";
  double write_fraction = -1.0;
  std::uint64_t seed = 42;
  std::uint64_t report_every = 100'000;
  std::string summary_path;
  std::string shards_flag, queue_flag, batch_flag;
  std::string connect_addr;
  std::string device_path;
  std::size_t clients = 1;
  std::size_t window = 256;
  bool crosscheck = true;

  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (parse_flag(argv[i], "--requests", v)) {
      requests = std::stoull(v);
    } else if (parse_flag(argv[i], "--device", v)) {
      device_path = v;
    } else if (parse_flag(argv[i], "--rps", v)) {
      rps = std::stod(v);
    } else if (parse_flag(argv[i], "--scheme", v)) {
      scheme = v;
    } else if (parse_flag(argv[i], "--workload", v)) {
      workload = v;
    } else if (parse_flag(argv[i], "--write-fraction", v)) {
      write_fraction = std::stod(v);
    } else if (parse_flag(argv[i], "--seed", v)) {
      seed = std::stoull(v);
    } else if (parse_flag(argv[i], "--shards", v)) {
      shards_flag = v;
    } else if (parse_flag(argv[i], "--queue", v)) {
      queue_flag = v;
    } else if (parse_flag(argv[i], "--batch", v)) {
      batch_flag = v;
    } else if (parse_flag(argv[i], "--report-every", v)) {
      report_every = std::stoull(v);
    } else if (parse_flag(argv[i], "--summary", v)) {
      summary_path = v;
    } else if (parse_flag(argv[i], "--connect", v)) {
      connect_addr = v;
    } else if (parse_flag(argv[i], "--clients", v)) {
      clients = std::stoull(v);
    } else if (parse_flag(argv[i], "--window", v)) {
      window = std::stoull(v);
    } else if (parse_flag(argv[i], "--crosscheck", v)) {
      crosscheck = std::stoull(v) != 0;
    } else {
      usage(argv[0]);
      return 2;
    }
  }
  RD_CHECK(requests >= 1);
  RD_CHECK(rps > 0.0);

  // Pin the device before any simulation object latches it; the --device
  // flag wins over the READDUO_DEVICE env knob.
  if (!device_path.empty()) {
    config::set_active_device(config::load_device(device_path),
                              device_path);
  }

  const trace::Workload& w = trace::workload_by_name(workload);
  if (write_fraction < 0.0) {
    write_fraction = w.wpki / (w.rpki + w.wpki);
  }

  if (!connect_addr.empty()) {
    ConnectRun rc;
    rc.addr = connect_addr;
    rc.requests = requests;
    rc.rps = rps;
    rc.scheme = scheme;
    rc.workload = workload;
    rc.write_fraction = write_fraction;
    rc.seed = seed;
    rc.clients = clients;
    rc.window = window;
    rc.crosscheck = crosscheck;
    rc.summary_path = summary_path;
    return run_connect(rc, w);
  }

  service::ServiceConfig cfg;
  cfg.sim.seed = seed;
  cfg.scheme = scheme_by_name(scheme);
  cfg.workload = w;
  service::apply_service_env(cfg);  // env defaults, flags override
  if (!shards_flag.empty()) {
    cfg.num_shards = static_cast<unsigned>(std::stoul(shards_flag));
  }
  if (!queue_flag.empty()) cfg.queue_capacity = std::stoull(queue_flag);
  if (!batch_flag.empty()) cfg.batch_size = std::stoull(batch_flag);

  service::MemoryService svc(cfg);
  std::printf(
      "[load] scheme=%s workload=%s shards=%u threads=%u queue=%zu "
      "batch=%zu rps=%.0f write_fraction=%.3f requests=%llu seed=%llu\n",
      scheme.c_str(), workload.c_str(), svc.num_shards(),
      svc.worker_threads(), cfg.queue_capacity, cfg.batch_size, rps,
      write_fraction, static_cast<unsigned long long>(requests),
      static_cast<unsigned long long>(seed));

  // Client-side draws use their own decorrelated stream so the request
  // sequence is a pure function of the seed.
  Rng rng(seed, /*stream=*/0x10ad);
  const Ns gap{std::max<std::int64_t>(1, from_seconds(1.0 / rps).v)};
  const auto t0 = std::chrono::steady_clock::now();
  auto wall_s = [&t0] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
  };

  Ns t{0};
  std::uint64_t backpressure_spins = 0;
  std::uint64_t next_report = report_every;
  for (std::uint64_t i = 1; i <= requests; ++i) {
    const GenReq g = next_request(rng, t, gap, write_fraction, w);
    service::Request r;
    r.id = i;
    r.arrival = g.arrival;
    r.is_write = g.is_write;
    r.archive = g.archive;
    r.line = g.line;
    while (!svc.submit(r)) {
      // Closed loop: a full shard queue pushes back on the client.
      ++backpressure_spins;
      std::this_thread::yield();
    }
    if (report_every > 0 && i >= next_report) {
      const service::ServiceStats st = svc.stats();
      live_report(st, wall_s(), requests);
      next_report = i + report_every;
    }
  }
  svc.drain();
  const service::ServiceStats st = svc.stats();
  live_report(st, wall_s(), requests);
  svc.stop();
  const double wall = wall_s();

  RD_CHECK_MSG(st.completed == requests,
               "service lost requests: completed != submitted");

  stats::JsonWriter j;
  j.add("tool", std::string("readduo_load"))
      .add("scheme", scheme)
      .add("device", config::active_device().name)
      .add("workload", workload)
      .add("shards", static_cast<std::uint64_t>(svc.num_shards()))
      .add("threads", static_cast<std::uint64_t>(svc.worker_threads()))
      .add("queue", static_cast<std::uint64_t>(cfg.queue_capacity))
      .add("batch", static_cast<std::uint64_t>(cfg.batch_size))
      .add("seed", seed)
      .add("rps_virtual", rps)
      .add("write_fraction", write_fraction)
      .add("requests", requests)
      .add("completed", st.completed)
      .add("rejected_submissions", st.rejected)
      .add("backpressure_spins", backpressure_spins)
      .add("virtual_time_ns",
           static_cast<std::int64_t>(st.virtual_time.v))
      .add("wall_ms", wall * 1e3)
      .add("throughput_rps_wall",
           wall > 0 ? static_cast<double>(st.completed) / wall : 0.0)
      .add("scrubs", st.scrubs)
      .add("write_cancellations", st.write_cancellations)
      .add("scrub_rewrites_dropped", st.scrub_rewrites_dropped)
      .add_raw("demand_reads", class_json(st.metrics.demand_reads()));
  for (std::size_t c = 0; c < stats::kNumReqClasses; ++c) {
    const auto cls = static_cast<stats::ReqClass>(c);
    if (st.metrics.lat(cls).count() == 0) continue;
    j.add_raw(stats::req_class_name(cls), class_json(st.metrics.lat(cls)));
  }
  const std::string json = j.str();
  std::printf("READDUO_METRICS %s", json.c_str());
  if (!summary_path.empty()) {
    std::ofstream out(summary_path);
    RD_CHECK_MSG(out.good(), "cannot write --summary file");
    out << json;
  }
  return 0;
}
