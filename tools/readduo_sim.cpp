// readduo_sim — the command-line front end to the full simulator stack.
//
//   readduo_sim --scheme=LWT --workload=mcf --instructions=6000000
//   readduo_sim --scheme=Select --k=4 --s=2 --config=system.ini
//   readduo_sim configs/rram_iss2012.cfg --scheme=Hybrid --workload=mcf
//   readduo_sim --list
//
// Runs one (scheme, workload) simulation and prints a complete report:
// execution time, read-mode mix, energy decomposition, endurance, and
// reliability events. A positional <device.cfg> (or --device=<file>)
// selects a device from the zoo (configs/; schema in
// docs/DEVICE_CONFIGS.md); --config INI overrides remain for ad-hoc
// system (CPU / row-buffer) parameters.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>

#include "common/config.h"
#include "config/apply.h"
#include "config/loader.h"
#include "memsim/env.h"
#include "memsim/simulator.h"
#include "readduo/schemes.h"
#include "stats/edap.h"
#include "stats/json.h"
#include "trace/trace_io.h"
#include "trace/workload.h"

using namespace rd;

namespace {

const std::map<std::string, readduo::SchemeKind>& scheme_names() {
  static const std::map<std::string, readduo::SchemeKind> kMap = {
      {"Ideal", readduo::SchemeKind::kIdeal},
      {"TLC", readduo::SchemeKind::kTlc},
      {"Scrubbing", readduo::SchemeKind::kScrubbing},
      {"Scrubbing-W0", readduo::SchemeKind::kScrubbingW0},
      {"Scrubbing-BCH10", readduo::SchemeKind::kScrubbingBch10},
      {"M-metric", readduo::SchemeKind::kMMetric},
      {"Hybrid", readduo::SchemeKind::kHybrid},
      {"LWT", readduo::SchemeKind::kLwt},
      {"Select", readduo::SchemeKind::kSelect},
  };
  return kMap;
}

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [device.cfg] --scheme=<name> --workload=<name> [options]\n"
      "\n"
      "options:\n"
      "  <device.cfg>           positional: device description to simulate\n"
      "                         (same as --device; see configs/ and\n"
      "                         docs/DEVICE_CONFIGS.md)\n"
      "  --device=<file>        select the device config; overrides the\n"
      "                         READDUO_DEVICE environment knob\n"
      "  --scheme=<name>        Ideal | TLC | Scrubbing | Scrubbing-W0 |\n"
      "                         Scrubbing-BCH10 | M-metric | Hybrid | LWT |"
      " Select\n"
      "  --workload=<name>      one of the 14 SPEC2006 workloads (--list)\n"
      "  --instructions=<n>     per-core instruction budget (default 2M)\n"
      "  --seed=<n>             RNG seed (default 42)\n"
      "  --k=<n> --s=<n>        LWT sub-intervals / Select window\n"
      "  --no-conversion        disable R-M-read -> write conversion\n"
      "  --row-buffer           enable the open-page row-buffer model\n"
      "  --json                 emit a machine-readable JSON report\n"
      "  --config=<file>        INI overrides: [cpu] cores, clock_ghz,\n"
      "                         read_stall_fraction; [memory] capacity_gb,\n"
      "                         banks; [energy] r_read_pj, m_read_pj,\n"
      "                         cell_write_pj\n"
      "  --list                 list workloads and exit\n"
      "\n"
      "environment:\n"
      "  READDUO_TRACE=<n>      keep the last n simulator events and dump\n"
      "                         them to stderr on a reliability event\n",
      argv0);
}

bool parse_flag(const char* arg, const char* name, std::string& out) {
  const std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) == 0 && arg[n] == '=') {
    out = arg + n + 1;
    return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  std::string scheme_name, workload_name = "mcf", config_path, value;
  std::string device_path;
  std::uint64_t instructions = 2'000'000, seed = 42;
  readduo::ReadDuoOptions opts;
  bool row_buffer = false;
  bool json = false;

  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--list") == 0) {
      for (const auto& w : trace::spec2006_workloads()) {
        std::printf("%-12s rpki=%.2f wpki=%.2f\n", w.name.c_str(), w.rpki,
                    w.wpki);
      }
      return 0;
    } else if (std::strcmp(a, "--help") == 0) {
      usage(argv[0]);
      return 0;
    } else if (std::strcmp(a, "--no-conversion") == 0) {
      opts.conversion = false;
    } else if (std::strcmp(a, "--row-buffer") == 0) {
      row_buffer = true;
    } else if (std::strcmp(a, "--json") == 0) {
      json = true;
    } else if (parse_flag(a, "--scheme", scheme_name) ||
               parse_flag(a, "--workload", workload_name) ||
               parse_flag(a, "--config", config_path) ||
               parse_flag(a, "--device", device_path)) {
      // handled
    } else if (a[0] != '-' && std::strlen(a) > 4 &&
               std::strcmp(a + std::strlen(a) - 4, ".cfg") == 0) {
      device_path = a;  // positional device config
    } else if (parse_flag(a, "--instructions", value)) {
      instructions = std::strtoull(value.c_str(), nullptr, 10);
    } else if (parse_flag(a, "--seed", value)) {
      seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (parse_flag(a, "--k", value)) {
      opts.k = static_cast<unsigned>(std::strtoul(value.c_str(), nullptr, 10));
    } else if (parse_flag(a, "--s", value)) {
      opts.select_s =
          static_cast<unsigned>(std::strtoul(value.c_str(), nullptr, 10));
    } else {
      std::fprintf(stderr, "unknown option: %s\n", a);
      usage(argv[0]);
      return 2;
    }
  }

  const auto it = scheme_names().find(scheme_name);
  if (it == scheme_names().end()) {
    std::fprintf(stderr, "unknown or missing --scheme\n");
    usage(argv[0]);
    return 2;
  }

  try {
    // Pin the device before any simulation object latches it; the
    // positional/--device path wins over the READDUO_DEVICE env knob.
    if (!device_path.empty()) {
      config::set_active_device(config::load_device(device_path),
                                device_path);
    }
    const config::DeviceConfig& dev = config::active_device();

    const trace::Workload& w = trace::workload_by_name(workload_name);

    memsim::SimConfig cfg;
    config::apply_device(dev, cfg);
    cfg.instructions_per_core = instructions;
    cfg.seed = seed;
    cfg.row_buffer.enabled = row_buffer;
    cfg.trace_events = stats::trace_ring_capacity_from_env();
    readduo::SchemeEnv env = memsim::make_scheme_env(w, cfg.cpu, seed);

    if (!config_path.empty()) {
      const Config ini = Config::load(config_path);
      cfg.cpu.num_cores = static_cast<unsigned>(
          ini.get_int("cpu.cores", cfg.cpu.num_cores));
      cfg.cpu.clock_ghz = ini.get_double("cpu.clock_ghz", cfg.cpu.clock_ghz);
      cfg.cpu.read_stall_fraction = ini.get_double(
          "cpu.read_stall_fraction", cfg.cpu.read_stall_fraction);
      cfg.org.capacity_bytes =
          static_cast<std::uint64_t>(ini.get_int(
              "memory.capacity_gb",
              static_cast<std::int64_t>(cfg.org.capacity_bytes >> 30)))
          << 30;
      cfg.org.num_banks = static_cast<unsigned>(
          ini.get_int("memory.banks", cfg.org.num_banks));
      env.energy.r_read =
          Pj{ini.get_double("energy.r_read_pj", env.energy.r_read.v)};
      env.energy.m_read =
          Pj{ini.get_double("energy.m_read_pj", env.energy.m_read.v)};
      env.energy.cell_write =
          Pj{ini.get_double("energy.cell_write_pj", env.energy.cell_write.v)};
      env = memsim::make_scheme_env(w, cfg.cpu, seed);  // rate from cpu
    }

    auto scheme = readduo::make_scheme(it->second, env, opts);
    memsim::Simulator sim(cfg, *scheme, w);
    const memsim::SimResult r = sim.run();
    const auto& c = scheme->counters();
    const stats::LatencyHistogram reads = r.metrics.demand_reads();

    if (json) {
      stats::JsonWriter jw;
      jw.add("scheme", scheme->name())
          .add("device", dev.name)
          .add("workload", w.name)
          .add("instructions", r.instructions)
          .add("exec_time_ns", static_cast<std::uint64_t>(r.exec_time.v))
          .add("ipc", r.ipc(cfg.cpu))
          .add("reads", r.reads_serviced)
          .add("avg_read_latency_ns", r.avg_read_latency_ns())
          .add("read_p50_ns", reads.p50())
          .add("read_p95_ns", reads.p95())
          .add("read_p99_ns", reads.p99())
          .add("read_max_ns", reads.max())
          .add("demand_write_p99_ns",
               r.metrics.lat(stats::ReqClass::kDemandWrite).p99())
          .add("scrub_rewrite_p99_ns",
               r.metrics.lat(stats::ReqClass::kScrubRewrite).p99())
          .add("r_reads", c.r_reads)
          .add("m_reads", c.m_reads)
          .add("rm_reads", c.rm_reads)
          .add("row_hits", r.row_hits)
          .add("demand_full_writes", c.demand_full_writes)
          .add("demand_diff_writes", c.demand_diff_writes)
          .add("scrub_rewrites", c.scrub_rewrites)
          .add("conversion_writes", c.conversion_writes)
          .add("write_cancellations", r.write_cancellations)
          .add("dynamic_energy_pj", c.dynamic_energy_pj())
          .add("read_energy_pj", c.read_energy_pj)
          .add("write_energy_pj", c.write_energy_pj)
          .add("scrub_energy_pj", c.scrub_energy_pj)
          .add("cell_writes", c.cell_writes)
          .add("cells_per_line", scheme->cells_per_line())
          .add("detected_uncorrectable", c.detected_uncorrectable)
          .add("silent_corruptions", c.silent_corruptions)
          .add("scrub_senses", c.scrub_senses)
          .add("scrub_backlog_end", r.scrub_backlog_end)
          .add("scrub_rewrites_dropped", r.scrub_rewrites_dropped);
      std::fputs(jw.str().c_str(), stdout);
      return 0;
    }

    std::printf("scheme      : %s\n", scheme->name().c_str());
    std::printf("device      : %s (%s)\n", dev.name.c_str(),
                config::active_device_source().c_str());
    std::printf("workload    : %s (rpki %.2f, wpki %.2f)\n", w.name.c_str(),
                w.rpki, w.wpki);
    std::printf("instructions: %llu (%u cores)\n",
                static_cast<unsigned long long>(r.instructions),
                cfg.cpu.num_cores);
    std::printf("exec time   : %.3f ms  (IPC %.3f)\n",
                static_cast<double>(r.exec_time.v) * 1e-6, r.ipc(cfg.cpu));
    std::printf("reads       : %llu serviced, avg latency %.0f ns "
                "(R/M/R-M = %llu/%llu/%llu, row hits %llu)\n",
                static_cast<unsigned long long>(r.reads_serviced),
                r.avg_read_latency_ns(),
                static_cast<unsigned long long>(c.r_reads),
                static_cast<unsigned long long>(c.m_reads),
                static_cast<unsigned long long>(c.rm_reads),
                static_cast<unsigned long long>(r.row_hits));
    std::printf("read tail   : p50 %.0f / p95 %.0f / p99 %.0f / max %lld "
                "ns\n",
                reads.p50(), reads.p95(), reads.p99(),
                static_cast<long long>(reads.max()));
    std::printf("writes      : %llu full + %llu diff demand, %llu scrub "
                "rewrites, %llu conversions, %llu cancellations\n",
                static_cast<unsigned long long>(c.demand_full_writes),
                static_cast<unsigned long long>(c.demand_diff_writes),
                static_cast<unsigned long long>(c.scrub_rewrites),
                static_cast<unsigned long long>(c.conversion_writes),
                static_cast<unsigned long long>(r.write_cancellations));
    const double tot = c.dynamic_energy_pj();
    std::printf("energy      : %.3f uJ dynamic (read %.1f%% / write %.1f%% "
                "/ scrub %.1f%%)\n",
                tot * 1e-6, 100.0 * c.read_energy_pj / tot,
                100.0 * c.write_energy_pj / tot,
                100.0 * c.scrub_energy_pj / tot);
    std::printf("endurance   : %llu cell writes (%.0f cells/line density)\n",
                static_cast<unsigned long long>(c.cell_writes),
                scheme->cells_per_line());
    std::printf("reliability : %llu detected-uncorrectable, %llu silent\n",
                static_cast<unsigned long long>(c.detected_uncorrectable),
                static_cast<unsigned long long>(c.silent_corruptions));
    std::printf("scrubbing   : %llu senses, backlog %llu, dropped "
                "rewrites %llu\n",
                static_cast<unsigned long long>(r.scrubs_serviced),
                static_cast<unsigned long long>(r.scrub_backlog_end),
                static_cast<unsigned long long>(r.scrub_rewrites_dropped));
  } catch (const CheckFailure& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
