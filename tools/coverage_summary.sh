#!/usr/bin/env bash
# Plain-gcov fallback for the `coverage` target (used when gcovr is not
# installed). Walks every .gcda in the build tree, asks gcov for the
# per-file "Lines executed" figures, and aggregates them into one
# repo-wide line-coverage number for src/ + bench/ sources.
#
# Usage: tools/coverage_summary.sh <build-dir> <source-root>
set -u
BUILD=${1:?build dir}
ROOT=${2:?source root}

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

find "$BUILD" -name '*.gcda' | while read -r gcda; do
  # -n: report to stdout only, no .gcov files littering the tree.
  (cd "$tmp" && gcov -n -o "$(dirname "$gcda")" "$gcda" 2>/dev/null)
done > "$tmp/report"

awk -v root="$ROOT/" '
  # gcov -n emits pairs of lines:
  #   File "…/src/ecc/bch.cpp"
  #   Lines executed:97.53% of 243
  /^File / {
    file = $2
    gsub(/\x27|"/, "", file)
    keep = index(file, root "src/") == 1 || index(file, root "bench/") == 1
  }
  # A header shows up once per including TU with a per-TU count; keep the
  # best-covered sighting per file rather than double-counting (a true
  # cross-TU union needs gcovr, which this script is the fallback for).
  /^Lines executed:/ && keep {
    split($2, pct, ":")
    sub(/%$/, "", pct[2])
    n = $4
    cov = (pct[2] / 100.0) * n
    if (!(file in total) || cov > covered[file]) {
      covered[file] = cov
      total[file] = n
    }
    keep = 0
  }
  END {
    files = 0
    for (f in total) {
      ++files
      c += covered[f]
      t += total[f]
    }
    if (t == 0) {
      print "coverage: no .gcda data found — run the tests first"
      exit 1
    }
    printf "coverage: %.1f%% of %d lines (%d files under src/ + bench/)\n", \
           100.0 * c / t, t, files
  }
' "$tmp/report"
