// Scratch probe: per-cell drift error probabilities vs the Table III/IV
// anchors, used to calibrate the model interpretation.
#include <cmath>
#include <cstdio>

#include "drift/error_model.h"

int main() {
  using namespace rd::drift;
  ErrorModel r(r_metric());
  ErrorModel m(m_metric());
  LerCalculator lr(r);
  LerCalculator lm(m);

  // Back-solved per-cell targets from Table III column E=0:
  // p = -ln(1 - LER(E=0)) / 296
  const double times[] = {4, 8, 16, 32, 64, 128, 256, 512, 640, 1024};
  const double table3_e0[] = {1.23e-2, 7.09e-2, 1.63e-1, 2.81e-1, 4.20e-1,
                              5.65e-1, 7.02e-1, 8.18e-1, 8.50e-1, 9.03e-1};
  std::printf("%8s %12s %12s %12s %12s\n", "t(s)", "p_model", "p_paper",
              "LER(E=0)", "LER(E=8)");
  for (int i = 0; i < 10; ++i) {
    const double t = times[i];
    const double p_model = r.avg_cell_error_prob(t);
    const double p_paper = -std::log(1.0 - table3_e0[i]) / 296.0;
    std::printf("%8.0f %12.3e %12.3e %12.3e %12.3e\n", t, p_model, p_paper,
                lr.ler(0, t), lr.ler(8, t));
  }
  std::printf("\nM-metric:\n");
  for (double t : {512.0, 640.0, 1024.0, 2048.0, 16384.0}) {
    std::printf("%8.0f p=%12.3e LER(E=0)=%12.3e LER(E=1)=%12.3e\n", t,
                m.avg_cell_error_prob(t), lm.ler(0, t), lm.ler(1, t));
  }
  // Per-state breakdown at 8s and 640s.
  std::printf("\nR per-state p at t=8: ");
  for (int s = 0; s < 4; ++s) std::printf("%.3e ", r.cell_error_prob(s, 8));
  std::printf("\nM per-state p at t=640: ");
  for (int s = 0; s < 4; ++s) std::printf("%.3e ", m.cell_error_prob(s, 640));
  std::printf("\n");
  return 0;
}
